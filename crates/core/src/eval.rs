//! The TESA evaluation pipeline (Fig. 2b): performance → power → floorplan
//! → schedule → steady-state thermal with leakage co-iteration → DRAM
//! power, MCM cost, latency, OPS — plus constraint checking.

use crate::constraints::{Constraints, Violation};
use crate::cost::CostModel;
use crate::design::{ChipletConfig, ChipletGeometry, Integration, McmDesign};
use crate::floorplan::{estimate_mesh, McmLayout, Mesh};
use crate::power::{
    array_leakage_w, dynamic_power, sram_leakage_w, DynamicPower, LeakageModel,
};
use crate::sched::{schedule, schedule_naive, Schedule, SchedulerPolicy};
use crate::tech::TechParams;

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use tesa_memsim::{DramPowerModel, DramUsage};
use tesa_util::{faultpoint, metrics, pool, trace, Json};

// Always-on evaluation/memo counters, exported by `tesa serve` on
// `GET /metrics`. Process-wide (summed over all evaluators); the
// per-evaluator hit/miss pair behind `eval_cache_stats` is unchanged.
static EVAL_CACHE_HITS: metrics::Counter = metrics::Counter::new(
    "tesa_eval_cache_hits_total",
    "Full-evaluation memo hits across all evaluators.",
);
static EVAL_CACHE_MISSES: metrics::Counter = metrics::Counter::new(
    "tesa_eval_cache_misses_total",
    "Full-evaluation memo misses (each one ran the exact pipeline).",
);
static SCREENS_DECISIVE: metrics::Counter = metrics::Counter::with_labels(
    "tesa_eval_screens_total",
    "Surrogate feasibility screens by verdict.",
    &[("verdict", "decisive")],
);
static SCREENS_AMBIGUOUS: metrics::Counter = metrics::Counter::with_labels(
    "tesa_eval_screens_total",
    "Surrogate feasibility screens by verdict.",
    &[("verdict", "ambiguous")],
);
use tesa_scalesim::{ArrayConfig, Dataflow, DnnReport, Simulator};
use tesa_thermal::{
    BatchSolveRequest, PowerMap, Rect, SolveError, SolveQuality, StackBuilder, Surrogate,
    ThermalModel,
};
use tesa_workloads::{DnnId, MultiDnnWorkload};

/// Temperature above which the leakage–temperature iteration is declared a
/// thermal runaway (silicon would long have throttled or failed).
const RUNAWAY_TEMP_C: f64 = 150.0;
/// Leakage-loop convergence threshold, Kelvin.
const LEAK_CONVERGENCE_K: f64 = 0.1;
/// Leakage-loop iteration cap.
const LEAK_MAX_ITERS: usize = 25;
/// Headroom multiplier on sustained DRAM bandwidth demand (double
/// buffering smooths per-layer bursts; 25% covers prefetch overlap).
const DRAM_BURST_MARGIN: f64 = 1.25;

/// Configuration of the evaluator: models, dataflow, and switches the
/// baselines use to *disable* parts of the pipeline.
#[derive(Debug, Clone)]
pub struct EvalOptions {
    /// Systolic-array dataflow.
    pub dataflow: Dataflow,
    /// Technology constants.
    pub tech: TechParams,
    /// Cost-model constants.
    pub cost: CostModel,
    /// Leakage model (TESA: exponential; W2: linear; W1/SC: disabled).
    pub leakage: LeakageModel,
    /// Whether to run the thermal solver at all (SC baselines disable it).
    pub thermal_enabled: bool,
    /// Thermal grid resolution per axis (64 ⇒ 125 µm cells on 8 mm — the
    /// paper's HotSpot grid).
    pub grid_cells: usize,
    /// DNN-to-chiplet scheduling policy (the ablation harness swaps in the
    /// naive baseline).
    pub scheduler: SchedulerPolicy,
    /// Lazy mode for design-space search: skip the steady-state thermal
    /// solve when a design is already infeasible (ICS/area/latency, or a
    /// dynamic-power lower bound over budget). The optimizer rejects such
    /// designs regardless, so the skipped solve cannot change any search
    /// decision; reported temperatures of *feasible* designs are identical.
    pub lazy: bool,
}

impl Default for EvalOptions {
    fn default() -> Self {
        Self {
            dataflow: Dataflow::WeightStationary,
            tech: TechParams::default(),
            cost: CostModel::default(),
            leakage: LeakageModel::Exponential,
            thermal_enabled: true,
            grid_cells: 64,
            scheduler: SchedulerPolicy::default(),
            lazy: false,
        }
    }
}

impl EvalOptions {
    /// Temperature-unaware options: no thermal solve, no leakage — the
    /// configuration of the SC1/SC2 baselines.
    pub fn temperature_unaware() -> Self {
        Self { leakage: LeakageModel::Disabled, thermal_enabled: false, ..Self::default() }
    }
}

/// A transient temperature trace from [`Evaluator::transient_trace`].
#[derive(Debug, Clone, PartialEq)]
pub struct TransientTrace {
    /// Simulation time stamps, seconds.
    pub times_s: Vec<f64>,
    /// Peak device-tier temperature at each stamp, °C.
    pub peaks_c: Vec<f64>,
}

impl TransientTrace {
    /// Highest peak over the whole trace, °C.
    pub fn max_peak_c(&self) -> f64 {
        self.peaks_c.iter().copied().fold(f64::NEG_INFINITY, f64::max)
    }
}

/// The complete evaluation of one MCM design point.
///
/// Fields that cannot be computed for a hard-infeasible design (e.g. the
/// chiplet does not fit the interposer) are set to `f64::INFINITY`
/// and the corresponding structures to `None`; check
/// [`McmEvaluation::is_feasible`] / [`McmEvaluation::violations`].
#[derive(Debug, Clone)]
pub struct McmEvaluation {
    /// The evaluated design point.
    pub design: McmDesign,
    /// Derived mesh (rows x cols), if the chiplet fits.
    pub mesh: Option<Mesh>,
    /// Chiplet placement, if the chiplet fits.
    pub layout: Option<McmLayout>,
    /// DNN-to-chiplet schedule, if the chiplet fits.
    pub schedule: Option<Schedule>,
    /// Workload makespan (all DNNs complete), seconds.
    pub latency_s: f64,
    /// Achieved frame rate, Hz.
    pub achieved_fps: f64,
    /// Peak junction temperature across all schedule phases, °C
    /// (ambient when the thermal solver is disabled, NaN when the solver
    /// failed on every fallback rung — see [`Violation::SolverFailure`]).
    pub peak_temp_c: f64,
    /// Whether the leakage–temperature iteration diverged.
    pub thermal_runaway: bool,
    /// Whether any thermal solve fell back to the degraded (cold-start
    /// Jacobi) ladder rung after the primary solve failed to converge. The
    /// reported temperatures still meet the solver tolerance; the flag
    /// marks the result as obtained under degraded solver conditions.
    pub degraded: bool,
    /// Worst-phase chiplet power (dynamic + leakage per options), watts.
    pub chip_power_w: f64,
    /// Average DRAM power over the frame window, watts.
    pub dram_power_w: f64,
    /// `chip_power_w + dram_power_w`.
    pub total_power_w: f64,
    /// Total DRAM channels allocated across chiplets.
    pub dram_channels: u32,
    /// MCM fabrication cost, USD.
    pub mcm_cost_usd: f64,
    /// Throughput in operations per second (2 ops per MAC, one frame of
    /// the full workload per makespan).
    pub ops: f64,
    /// Constraint violations (empty = feasible).
    pub violations: Vec<Violation>,
}

impl McmEvaluation {
    /// Whether every user constraint is satisfied.
    pub fn is_feasible(&self) -> bool {
        self.violations.is_empty()
    }

    /// Eq. (6) value of this design under `objective`.
    pub fn objective(&self, objective: &crate::objective::Objective) -> f64 {
        objective.value(self.mcm_cost_usd, self.dram_power_w)
    }
}

/// Verdict of the cheap screening pass ([`Evaluator::screen`]).
///
/// Screening combines the *exact* pre-thermal pipeline (ICS, area,
/// latency, DRAM, dynamic-power lower bound) with coarse-grid surrogate
/// thermal solves whose error is covered by a calibrated bound. Both
/// decisive verdicts are one-sided monotone arguments:
///
/// * [`ScreenVerdict::ClearlyInfeasible`] — an exact violation, or the
///   surrogate's *lower-bound* solve (leakage frozen at ambient — true
///   leakage can only be higher) already exceeds the temperature budget
///   by more than the surrogate error bound.
/// * [`ScreenVerdict::ClearlyFeasible`] — the *upper-bound* solve
///   (leakage frozen at the temperature budget) stays below the budget by
///   more than the error bound and is self-consistent, so the true
///   leakage fixed point sits below it.
/// * [`ScreenVerdict::Ambiguous`] — the surrogate interval straddles a
///   limit; only the exact pipeline can decide.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScreenVerdict {
    /// The design provably violates a constraint; a full evaluation would
    /// report it infeasible.
    ClearlyInfeasible,
    /// Every constraint provably holds; a full evaluation would report it
    /// feasible.
    ClearlyFeasible,
    /// The screen cannot decide; run [`Evaluator::evaluate_cached`].
    Ambiguous,
}

/// Result of the per-phase steady-state thermal analysis with leakage
/// co-iteration (`Evaluator::thermal_analysis_full`).
struct ThermalAnalysis {
    /// Peak junction temperature, °C (NaN when `solver_failed`).
    peak_c: f64,
    /// The leakage–temperature iteration diverged.
    runaway: bool,
    /// Worst-phase chiplet power, watts.
    worst_power_w: f64,
    /// Converged field of the hottest phase.
    hottest_field: Option<tesa_thermal::ThermalField>,
    /// At least one solve completed on the degraded (cold-start Jacobi)
    /// fallback rung.
    degraded: bool,
    /// A solve failed on every rung; `peak_c` is meaningless.
    solver_failed: bool,
}

/// Everything the pre-thermal pipeline (`Evaluator::evaluate_prelude`)
/// produces for one design: the inputs of the thermal stage plus the
/// fields `Evaluator::evaluate_epilogue` folds into the final
/// [`McmEvaluation`]. Splitting `evaluate` around this struct lets the
/// batched paths run many designs' thermal stages through one multi-RHS
/// lockstep solve while each design's arithmetic stays exactly serial.
struct ThermalPending {
    design: McmDesign,
    geometry: ChipletGeometry,
    layout: McmLayout,
    sched: Schedule,
    dnn_power: Vec<DynamicPower>,
    dnn_power_total: Vec<f64>,
    /// Pre-thermal violations (ICS, latency) in serial push order.
    violations: Vec<Violation>,
    latency_s: f64,
    achieved_fps: f64,
    dram_power_w: f64,
    dram_channels: u32,
    total_macs: u64,
}

/// Outcome of the pre-thermal pipeline: either the evaluation is already
/// decided (the chiplet does not fit, or the lazy gate rejected it), or
/// the thermal stage still has to run.
enum EvalPrelude {
    /// Decided without a thermal solve. `lazy_skip` distinguishes the
    /// lazy-mode rejection from hard area infeasibility for trace
    /// annotation.
    Done { eval: Box<McmEvaluation>, lazy_skip: bool },
    /// Pipeline output up to the thermal stage, ready for the solver.
    Thermal(Box<ThermalPending>),
}

/// One lockstep lane of `Evaluator::thermal_analysis_group`: the loop
/// variables of `thermal_analysis_full`, lifted into a struct so k
/// same-model designs advance their leakage co-iterations together and
/// share each step's batched solve.
struct GroupRun<'a> {
    pending: &'a ThermalPending,
    phases: Vec<Vec<(usize, DnnId)>>,
    array_tier: usize,
    sram_tier: usize,
    n_chiplets: usize,
    ranges: Vec<(usize, usize, usize, usize)>,
    phase_idx: usize,
    dyn_by_chip: Vec<Option<DynamicPower>>,
    temps: Vec<f64>,
    leak_iters: usize,
    phase_power: f64,
    guess: Option<Vec<f64>>,
    pmap: PowerMap,
    last_field: Option<tesa_thermal::ThermalField>,
    peak: f64,
    worst_power: f64,
    hottest_field: Option<tesa_thermal::ThermalField>,
    degraded: bool,
    /// The `eval.thermal.fail` faultpoint fired for this run this step.
    failed_now: bool,
    /// Set once the run retires; `None` means it still solves each step.
    done: Option<ThermalAnalysis>,
}

impl GroupRun<'_> {
    /// Loads phase `phase_idx` (fresh ambient temperatures, per-chip
    /// dynamic power) or, past the last phase, retires the run with its
    /// summary — the same transition the serial per-phase loop makes.
    fn enter_phase_or_finish(&mut self, ambient_c: f64) {
        if self.phase_idx >= self.phases.len() {
            self.done = Some(ThermalAnalysis {
                peak_c: self.peak,
                runaway: false,
                worst_power_w: self.worst_power,
                hottest_field: self.hottest_field.take(),
                degraded: self.degraded,
                solver_failed: false,
            });
            return;
        }
        self.dyn_by_chip.clear();
        self.dyn_by_chip.resize(self.n_chiplets, None);
        for &(chip, dnn) in &self.phases[self.phase_idx] {
            self.dyn_by_chip[chip] = Some(self.pending.dnn_power[dnn.0]);
        }
        self.temps.clear();
        self.temps.resize(self.n_chiplets, ambient_c);
        self.leak_iters = 0;
        self.phase_power = 0.0;
        self.last_field = None;
    }

    /// Emits the `eval.phase` event with exactly the serial loop's fields.
    fn emit_phase_event(&self, ambient_c: f64, runaway: bool) {
        trace::event("eval.phase", || {
            let phase_peak = self.last_field.as_ref().map_or(ambient_c, |f| {
                f.layer_peak_c(self.array_tier).max(f.layer_peak_c(self.sram_tier))
            });
            vec![
                ("leak_iters", Json::U64(self.leak_iters as u64)),
                ("power_w", Json::F64(self.phase_power)),
                ("peak_c", Json::F64(phase_peak)),
                ("runaway", Json::Bool(runaway)),
            ]
        });
    }
}

/// Grid-layer indices of the (array, SRAM) device tiers in the stack
/// built by `Evaluator::thermal_model`.
fn device_tiers(integration: Integration) -> (usize, usize) {
    match integration {
        Integration::TwoD => (1, 1),
        Integration::ThreeD => (3, 1),
    }
}

/// Fine-grid cell ranges per chiplet for mean-temperature queries.
fn chip_cell_ranges(
    layout: &McmLayout,
    model: &ThermalModel,
) -> Vec<(usize, usize, usize, usize)> {
    let (nx, ny) = model.grid_dims();
    let (w_m, h_m) = model.footprint_m();
    layout
        .positions_m
        .iter()
        .map(|r| {
            let ix0 = ((r.x / w_m * nx as f64).floor() as usize).min(nx - 1);
            let ix1 = ((r.x2() / w_m * nx as f64).ceil() as usize).clamp(ix0 + 1, nx);
            let iy0 = ((r.y / h_m * ny as f64).floor() as usize).min(ny - 1);
            let iy1 = ((r.y2() / h_m * ny as f64).ceil() as usize).clamp(iy0 + 1, ny);
            (ix0, ix1, iy0, iy1)
        })
        .collect()
}

type PerfKey = (u32, u64);
type ThermalKey = (u64, u32, u32, u32, bool);
/// A design plus the bit patterns of the constraint fields.
type EvalKey = (McmDesign, [u64; 6]);

fn constraints_key(c: &Constraints) -> [u64; 6] {
    [
        c.min_fps.to_bits(),
        c.power_budget_w.to_bits(),
        c.interposer_w_mm.to_bits(),
        c.interposer_h_mm.to_bits(),
        c.temp_budget_c.to_bits(),
        u64::from(c.max_ics_um),
    ]
}

/// Capacity of the evaluation memo: a full TESA design-space sweep is a
/// few thousand distinct points, so this keeps every sweep resident while
/// bounding memory for open-ended callers (long annealing runs over huge
/// spaces, servers evaluating many workloads through one `Evaluator`).
const EVAL_CACHE_CAP: usize = 65_536;
/// Screening-verdict memo capacity (verdicts are tiny; match the memo).
const SCREEN_CACHE_CAP: usize = 65_536;
/// Performance-report memo capacity. Entries are per `(array, SRAM)` pair
/// — a handful per design space — but each holds full per-DNN reports, so
/// open-ended callers need a bound too.
const PERF_CACHE_CAP: usize = 1_024;
/// Thermal-model (and surrogate) memo capacity. Models are the heaviest
/// cached objects (conductance network + multigrid hierarchy, megabytes on
/// production grids); one entry serves every design sharing a layout.
const THERMAL_CACHE_CAP: usize = 256;

/// Size-capped memo: a `HashMap` plus a FIFO of insertion order. When
/// full, the oldest entry is evicted — revisit patterns in annealing and
/// sweeps are dominated by *recent* neighbors, so FIFO keeps the useful
/// window without LRU bookkeeping on the read path (reads stay under the
/// `RwLock` read lock, shared across threads). Used for evaluations,
/// performance reports, thermal models, surrogates, and screen verdicts.
struct CappedCache<K, V> {
    map: HashMap<K, V>,
    order: VecDeque<K>,
    cap: usize,
}

impl<K: std::hash::Hash + Eq + Copy, V> CappedCache<K, V> {
    fn with_cap(cap: usize) -> Self {
        Self { map: HashMap::new(), order: VecDeque::new(), cap }
    }

    fn get(&self, key: &K) -> Option<&V> {
        self.map.get(key)
    }

    fn clear(&mut self) {
        self.map.clear();
        self.order.clear();
    }

    fn insert(&mut self, key: K, value: V) {
        if self.map.insert(key, value).is_some() {
            return; // Re-insert of a racing miss; order entry already queued.
        }
        self.order.push_back(key);
        while self.map.len() > self.cap {
            let Some(oldest) = self.order.pop_front() else { break };
            self.map.remove(&oldest);
        }
    }
}

/// Evaluates MCM design points for one workload.
///
/// Performance simulations are memoized per (array, SRAM) pair — ICS and
/// frequency do not affect cycle counts — and thermal models per layout,
/// so design-space sweeps amortize the expensive parts. The evaluator is
/// `Sync`: sweeps may evaluate from multiple threads.
pub struct Evaluator {
    workload: MultiDnnWorkload,
    opts: EvalOptions,
    perf_cache: RwLock<CappedCache<PerfKey, Arc<Vec<DnnReport>>>>,
    thermal_cache: RwLock<CappedCache<ThermalKey, Arc<ThermalModel>>>,
    surrogate_cache: RwLock<CappedCache<ThermalKey, Arc<Surrogate>>>,
    // The first `bool` records whether the verdict came from a full
    // screen (upper-bound solves included): an `Ambiguous` from the
    // infeasible-only mode must not answer a full-screen query, which
    // might classify the same design `ClearlyFeasible`. The second
    // records whether the verdict was settled at the surrogate thermal
    // stage (coarse solves ran) rather than by the cheap exact pipeline —
    // cached so the answer is identical on a cache hit, keeping callers
    // that branch on it deterministic.
    screen_cache: RwLock<CappedCache<EvalKey, (ScreenVerdict, bool, bool)>>,
    eval_cache: RwLock<CappedCache<EvalKey, Arc<McmEvaluation>>>,
    eval_hits: AtomicU64,
    eval_misses: AtomicU64,
    dram: DramPowerModel,
}

impl Evaluator {
    /// Creates an evaluator for `workload` under the given options.
    pub fn new(workload: MultiDnnWorkload, opts: EvalOptions) -> Self {
        // Eager registration: a `/metrics` scrape shows the memo and
        // screen families at zero before any query touches them.
        EVAL_CACHE_HITS.register();
        EVAL_CACHE_MISSES.register();
        SCREENS_DECISIVE.register();
        SCREENS_AMBIGUOUS.register();
        let dram = DramPowerModel::new(opts.tech.dram_channel);
        Self {
            workload,
            opts,
            perf_cache: RwLock::new(CappedCache::with_cap(PERF_CACHE_CAP)),
            thermal_cache: RwLock::new(CappedCache::with_cap(THERMAL_CACHE_CAP)),
            surrogate_cache: RwLock::new(CappedCache::with_cap(THERMAL_CACHE_CAP)),
            screen_cache: RwLock::new(CappedCache::with_cap(SCREEN_CACHE_CAP)),
            eval_cache: RwLock::new(CappedCache::with_cap(EVAL_CACHE_CAP)),
            eval_hits: AtomicU64::new(0),
            eval_misses: AtomicU64::new(0),
            dram,
        }
    }

    /// [`Evaluator::evaluate`] with memoization on `(design, constraints)`.
    /// Design-space searches revisit neighbors constantly; this makes the
    /// revisit free. Evaluation is deterministic, so caching is exact.
    pub fn evaluate_cached(
        &self,
        design: &McmDesign,
        constraints: &Constraints,
    ) -> Arc<McmEvaluation> {
        let key: EvalKey = (*design, constraints_key(constraints));
        if let Some(hit) = self.eval_cache.read().expect("cache lock poisoned").get(&key) {
            self.eval_hits.fetch_add(1, Ordering::Relaxed);
            EVAL_CACHE_HITS.inc();
            trace::counter("eval.cache.hit", 1.0);
            return Arc::clone(hit);
        }
        self.eval_misses.fetch_add(1, Ordering::Relaxed);
        EVAL_CACHE_MISSES.inc();
        trace::counter("eval.cache.miss", 1.0);
        let eval = Arc::new(self.evaluate(design, constraints));
        self.eval_cache.write().expect("cache lock poisoned").insert(key, Arc::clone(&eval));
        eval
    }

    /// `(hits, misses)` counts of [`Evaluator::evaluate_cached`] since
    /// construction. A design-space search should see hits dominate once
    /// it starts revisiting neighbors; a near-zero hit rate means the
    /// search is exploring an unbounded space and the memo (capped at
    /// `EVAL_CACHE_CAP` entries, FIFO eviction) is doing little.
    pub fn eval_cache_stats(&self) -> (u64, u64) {
        (self.eval_hits.load(Ordering::Relaxed), self.eval_misses.load(Ordering::Relaxed))
    }

    /// Drops the evaluation and screen result memos, keeping the model
    /// memos (performance, thermal, surrogate) warm. Long-lived hosts use
    /// this to re-evaluate after out-of-band state changes (a recalibrated
    /// technology file, say) without paying model reconstruction again;
    /// benchmarks use it to measure real evaluation work on a warmed
    /// evaluator instead of memo probes. Hit/miss counters are untouched.
    pub fn clear_result_memos(&self) {
        self.eval_cache.write().expect("cache lock poisoned").clear();
        self.screen_cache.write().expect("cache lock poisoned").clear();
    }

    /// Cheap feasibility screen for `design` (memoized on
    /// `(design, constraints)` like [`Evaluator::evaluate_cached`]).
    ///
    /// Runs the exact pre-thermal pipeline (ICS, area, performance,
    /// schedule, latency, DRAM, a power lower bound) and then two
    /// coarse-grid surrogate thermal solves per schedule phase — orders of
    /// magnitude cheaper than the fine-grid leakage co-iteration. Each
    /// decisive verdict is sound in the direction it claims (see
    /// [`ScreenVerdict`]), so a search loop may discard
    /// [`ScreenVerdict::ClearlyInfeasible`] candidates without ever
    /// running [`Evaluator::evaluate`]; the multi-start annealer does
    /// exactly that when screening is enabled, and still evaluates every
    /// design it accepts or reports, so emitted artifacts never contain
    /// surrogate numbers.
    ///
    /// Emits one `eval.surrogate.screened` (decisive) or
    /// `eval.surrogate.ambiguous` trace counter per call.
    pub fn screen(&self, design: &McmDesign, constraints: &Constraints) -> ScreenVerdict {
        self.screen_mode(design, constraints, true).0
    }

    /// [`Evaluator::screen`] without the clearly-feasible classification:
    /// per phase it runs only the lower-bound surrogate solve, so a
    /// returned [`ScreenVerdict::Ambiguous`] means just "not clearly
    /// infeasible" — the design may well be clearly feasible.
    ///
    /// This is the right screen for callers that must run the exact
    /// evaluation on every surviving candidate anyway (the annealer needs
    /// the exact objective score to accept a move, so a clearly-feasible
    /// verdict saves it nothing): the upper-bound solves are pure
    /// overhead there, and skipping them roughly halves the screening
    /// cost of every candidate that survives.
    ///
    /// Unlike [`Evaluator::screen`], this mode never consults the exact
    /// evaluation memo: its verdict is a pure function of the design, so
    /// a serial search loop that branches on it behaves identically no
    /// matter how much concurrent cache warm-up has happened to run.
    pub fn screen_infeasible_only(
        &self,
        design: &McmDesign,
        constraints: &Constraints,
    ) -> ScreenVerdict {
        self.screen_mode(design, constraints, false).0
    }

    /// [`Evaluator::screen_infeasible_only`] plus whether the verdict was
    /// settled at the surrogate thermal stage (coarse-grid solves ran)
    /// rather than by the cheap exact pipeline. The annealer's adaptive
    /// screening gate needs the distinction: with a lazy evaluator, a
    /// cheap-stage reject saves nothing the full evaluation would not
    /// reject just as cheaply, so only surrogate-stage outcomes count as
    /// the screen earning (reject) or wasting (ambiguous) its keep. The
    /// stage bit is memoized with the verdict, so it is a pure function
    /// of the design — identical on every machine and thread count.
    pub(crate) fn screen_chain(
        &self,
        design: &McmDesign,
        constraints: &Constraints,
    ) -> (ScreenVerdict, bool) {
        self.screen_mode(design, constraints, false)
    }

    fn screen_mode(
        &self,
        design: &McmDesign,
        constraints: &Constraints,
        classify_feasible: bool,
    ) -> (ScreenVerdict, bool) {
        let key: EvalKey = (*design, constraints_key(constraints));
        if classify_feasible {
            // The exact answer may already be known — no surrogate
            // involved, so no screening counters. The infeasible-only
            // mode must NOT take this shortcut: the annealer's serial
            // chain drives its adaptive screening gate (and its
            // evaluation counters) off these verdicts, and the eval
            // cache's contents depend on how much speculative warm-up
            // ran — i.e. on the machine's thread count. Surrogate
            // verdicts are a pure function of the design, so the serial
            // chain stays bit-identical for any `TESA_THREADS`.
            if let Some(hit) = self.eval_cache.read().expect("cache lock poisoned").get(&key) {
                let v = if hit.is_feasible() {
                    ScreenVerdict::ClearlyFeasible
                } else {
                    ScreenVerdict::ClearlyInfeasible
                };
                return (v, false);
            }
        }
        if let Some(&(v, full, surrogate)) =
            self.screen_cache.read().expect("cache lock poisoned").get(&key)
        {
            // A full-screen verdict answers either mode; an
            // infeasible-only verdict answers only infeasible-only
            // queries (its `Ambiguous` may hide a `ClearlyFeasible`).
            if full || !classify_feasible {
                Self::count_screen(v);
                return (v, surrogate);
            }
        }
        let (v, surrogate) = self.screen_uncached(design, constraints, classify_feasible);
        self.screen_cache
            .write()
            .expect("cache lock poisoned")
            .insert(key, (v, classify_feasible, surrogate));
        Self::count_screen(v);
        (v, surrogate)
    }

    fn count_screen(v: ScreenVerdict) {
        match v {
            ScreenVerdict::Ambiguous => {
                SCREENS_AMBIGUOUS.inc();
                trace::counter("eval.surrogate.ambiguous", 1.0);
            }
            _ => {
                SCREENS_DECISIVE.inc();
                trace::counter("eval.surrogate.screened", 1.0);
            }
        }
    }

    /// Returns the verdict plus whether it was settled at the surrogate
    /// thermal stage (`true` once the coarse solves have run).
    fn screen_uncached(
        &self,
        design: &McmDesign,
        constraints: &Constraints,
        classify_feasible: bool,
    ) -> (ScreenVerdict, bool) {
        let chiplet = design.chiplet;
        let tech = &self.opts.tech;
        let geometry = chiplet.geometry(tech);

        // Exact cheap pipeline — the same maths as `evaluate` steps 1–4.
        if design.ics_um > constraints.max_ics_um {
            return (ScreenVerdict::ClearlyInfeasible, false);
        }
        let Some(layout) = estimate_mesh(
            geometry.side_mm(),
            design.ics_mm(),
            constraints.interposer_w_mm,
            constraints.interposer_h_mm,
            self.workload.len() as u32,
        ) else {
            return (ScreenVerdict::ClearlyInfeasible, false);
        };
        let reports = self.perf(&chiplet);
        let freq_hz = design.freq_hz();
        let dnn_cycles: Vec<u64> = reports.iter().map(|r| r.total_cycles).collect();
        let dnn_power: Vec<DynamicPower> =
            reports.iter().map(|r| dynamic_power(r, &chiplet, tech, freq_hz)).collect();
        let dnn_power_total: Vec<f64> = dnn_power.iter().map(DynamicPower::total_w).collect();
        let order = layout.corner_first_order();
        let sched = match self.opts.scheduler {
            SchedulerPolicy::CornerFirstPowerAware => {
                schedule(&order, &dnn_cycles, &dnn_power_total)
            }
            SchedulerPolicy::NaiveRoundRobin => {
                schedule_naive(order.len(), &dnn_cycles, &dnn_power_total)
            }
        };
        let latency_s = sched.makespan_cycles() as f64 / freq_hz;
        let achieved_fps = 1.0 / latency_s;
        if achieved_fps + 1e-9 < constraints.min_fps {
            return (ScreenVerdict::ClearlyInfeasible, false);
        }
        let mut dram_channels = 0u32;
        let mut dram_bytes = 0.0f64;
        for q in &sched.assignments {
            if q.is_empty() {
                continue;
            }
            let demand = q
                .iter()
                .map(|d| reports[d.0].avg_dram_bytes_per_cycle() * freq_hz * DRAM_BURST_MARGIN)
                .fold(0.0, f64::max);
            dram_channels += self.dram.channels_for_peak_bandwidth(demand);
            dram_bytes += q.iter().map(|d| reports[d.0].dram_traffic.total() as f64).sum::<f64>();
        }
        let dram_power_w = self
            .dram
            .power(DramUsage {
                bytes_transferred: dram_bytes,
                window_s: constraints.frame_window_s(),
                channels: dram_channels,
            })
            .total_w();

        let n_chiplets = layout.mesh.count() as usize;
        let leak_chip_ambient = array_leakage_w(&chiplet, tech, tech.ambient_c, self.opts.leakage)
            + sram_leakage_w(&chiplet, tech, tech.ambient_c, self.opts.leakage);
        let dyn_worst_phase_w = sched
            .phases()
            .iter()
            .map(|phase| phase.iter().map(|&(_, d)| dnn_power_total[d.0]).sum::<f64>())
            .fold(0.0, f64::max);

        if !self.opts.thermal_enabled {
            // No solver in the full pipeline either — the remaining Power
            // check is exact, so the screen always decides. The repeated
            // sum mirrors `evaluate` term for term so the comparison is
            // bit-identical.
            let mut worst = 0.0f64;
            for phase in sched.phases() {
                let dyn_w: f64 = phase.iter().map(|&(_, d)| dnn_power_total[d.0]).sum();
                let leak: f64 = (0..layout.mesh.count()).map(|_| leak_chip_ambient).sum();
                worst = worst.max(dyn_w + leak);
            }
            let v = if worst + dram_power_w > constraints.power_budget_w {
                ScreenVerdict::ClearlyInfeasible
            } else {
                ScreenVerdict::ClearlyFeasible
            };
            return (v, false);
        }

        // Power lower bound: leakage frozen at ambient only grows with
        // temperature (all leakage models are monotone), so exceeding the
        // budget here is decisive.
        let leak_all_ambient: f64 = (0..layout.mesh.count()).map(|_| leak_chip_ambient).sum();
        if dyn_worst_phase_w + leak_all_ambient + dram_power_w > constraints.power_budget_w {
            return (ScreenVerdict::ClearlyInfeasible, false);
        }

        // Surrogate thermal screen: one lower-bound and one upper-bound
        // coarse solve per phase.
        let model = self.thermal_model(&layout, &geometry, chiplet.integration);
        let sur = self.surrogate_of(&model, &layout, chiplet.integration);
        let (array_tier, sram_tier) = device_tiers(chiplet.integration);
        let ranges = chip_cell_ranges(&layout, &model);
        let mut pmap = model.zero_power();
        // Separate buffer for the upper-bound injection: the full screen
        // solves a phase's two bounds as one k=2 lockstep batch
        // (`Surrogate::solve_pair`), so both maps must exist before the
        // solve. The paired solutions are bit-identical to two serial
        // solves, so every verdict is unchanged; a phase the lower bound
        // already rejects wastes its upper half — the accepted price of
        // the fused pass, and the rejecting phase is the last one solved.
        let mut pmap_hi = model.zero_power();
        let budget_c = constraints.temp_budget_c;
        let mut all_clearly_feasible = classify_feasible;
        for phase in sched.phases() {
            let mut dyn_by_chip: Vec<Option<DynamicPower>> = vec![None; n_chiplets];
            for &(chip, dnn) in &phase {
                dyn_by_chip[chip] = Some(dnn_power[dnn.0]);
            }

            // Lower bound: ambient leakage is a floor on the co-iterated
            // power map, and the SPD network responds monotonically to
            // power, so the true fine-grid peak is at least `est − bound`.
            pmap.clear();
            self.inject_phase_power(
                &mut pmap,
                &layout,
                &geometry,
                &chiplet,
                &dyn_by_chip,
                &vec![tech.ambient_c; n_chiplets],
                array_tier,
                sram_tier,
            );
            let (low, upper) = if classify_feasible {
                pmap_hi.clear();
                let p_high = self.inject_phase_power(
                    &mut pmap_hi,
                    &layout,
                    &geometry,
                    &chiplet,
                    &dyn_by_chip,
                    &vec![budget_c; n_chiplets],
                    array_tier,
                    sram_tier,
                );
                let (low, high) = sur.solve_pair(&pmap, &pmap_hi);
                (low, Some((high, p_high)))
            } else {
                (sur.solve(&pmap), None)
            };
            let low_peak = low.layer_peak_c(array_tier).max(low.layer_peak_c(sram_tier));
            if low_peak - low.bound_c() > budget_c {
                return (ScreenVerdict::ClearlyInfeasible, true);
            }
            let Some((high, p_high)) = upper else {
                continue;
            };

            // Upper bound: freeze leakage at the temperature budget. If
            // the resulting field stays below the budget at every chip
            // region mean (the temperatures the leakage loop feeds on) and
            // at the peak, the co-iteration from ambient is a monotone
            // sequence bounded by the budget — the true fixed point sits
            // below it, so the phase can neither breach the budget nor run
            // away (the budget itself is below the runaway threshold).
            let high_peak = high.layer_peak_c(array_tier).max(high.layer_peak_c(sram_tier));
            let regions_below_budget = ranges.iter().all(|r| {
                high.region_mean_c(array_tier, r.0, r.1, r.2, r.3) + high.bound_c() <= budget_c
            });
            let phase_clear = high_peak + high.bound_c() < budget_c
                && regions_below_budget
                && p_high + dram_power_w <= constraints.power_budget_w
                && budget_c < RUNAWAY_TEMP_C;
            all_clearly_feasible &= phase_clear;
        }
        let v = if all_clearly_feasible {
            ScreenVerdict::ClearlyFeasible
        } else {
            ScreenVerdict::Ambiguous
        };
        (v, true)
    }

    /// The workload being targeted.
    pub fn workload(&self) -> &MultiDnnWorkload {
        &self.workload
    }

    /// The evaluator's options.
    pub fn options(&self) -> &EvalOptions {
        &self.opts
    }

    /// Per-DNN performance reports for a chiplet configuration (memoized).
    pub fn perf(&self, chiplet: &ChipletConfig) -> Arc<Vec<DnnReport>> {
        let key: PerfKey = (chiplet.array_dim, chiplet.sram_kib_per_bank);
        if let Some(hit) = self.perf_cache.read().expect("cache lock poisoned").get(&key) {
            return Arc::clone(hit);
        }
        let mut perf_span = trace::span("eval.perf");
        perf_span.field("array", Json::U64(u64::from(chiplet.array_dim)));
        perf_span.field("sram_kib", Json::U64(chiplet.sram_kib_per_bank));
        let sim = Simulator::new(
            ArrayConfig::square(chiplet.array_dim),
            chiplet.sram_capacities(),
            self.opts.dataflow,
        );
        let reports: Vec<DnnReport> = self.workload.iter().map(|d| sim.simulate_dnn(d)).collect();
        let arc = Arc::new(reports);
        self.perf_cache.write().expect("cache lock poisoned").insert(key, Arc::clone(&arc));
        arc
    }

    /// Cache key of the thermal model (and surrogate) shared by every
    /// design with this layout. Quantizes the side to nanometers for a
    /// stable key.
    fn thermal_key(layout: &McmLayout, integration: Integration) -> ThermalKey {
        (
            (layout.chiplet_side_mm * 1e6).round() as u64,
            (layout.ics_mm * 1e3).round() as u32,
            layout.mesh.rows,
            layout.mesh.cols,
            matches!(integration, Integration::ThreeD),
        )
    }

    /// The coarse-grid thermal surrogate for `model`, memoized per layout.
    /// Built lazily on first screening of a layout; shares the model's
    /// multigrid hierarchy, so construction is cheap after the model
    /// itself exists.
    fn surrogate_of(
        &self,
        model: &ThermalModel,
        layout: &McmLayout,
        integration: Integration,
    ) -> Arc<Surrogate> {
        let key = Self::thermal_key(layout, integration);
        if let Some(hit) = self.surrogate_cache.read().expect("cache lock poisoned").get(&key) {
            return Arc::clone(hit);
        }
        let sur = Arc::new(model.surrogate());
        self.surrogate_cache.write().expect("cache lock poisoned").insert(key, Arc::clone(&sur));
        sur
    }

    fn thermal_model(
        &self,
        layout: &McmLayout,
        geometry: &ChipletGeometry,
        integration: Integration,
    ) -> Arc<ThermalModel> {
        let key = Self::thermal_key(layout, integration);
        if let Some(hit) = self.thermal_cache.read().expect("cache lock poisoned").get(&key) {
            return Arc::clone(hit);
        }
        let t = &self.opts.tech;
        let n = self.opts.grid_cells;
        let w = layout.interposer_w_mm * 1e-3;
        let h = layout.interposer_h_mm * 1e-3;
        let silicon: Vec<(Rect, f64)> =
            layout.positions_m.iter().map(|r| (*r, t.k_silicon)).collect();
        let builder = StackBuilder::new(w, h, n, n)
            .layer("interposer", t.t_interposer_m, t.k_silicon);
        let builder = match integration {
            Integration::TwoD => builder.layer_with_patches(
                "device",
                t.t_tier_m,
                t.k_underfill,
                silicon.clone(),
            ),
            Integration::ThreeD => {
                // SRAM tier with TSV copper fill, bond layer, array tier.
                let f = geometry.tsv_fill_fraction();
                let k_sram_tier = t.k_silicon * (1.0 - f) + t.k_copper * f;
                let sram_patches: Vec<(Rect, f64)> =
                    layout.positions_m.iter().map(|r| (*r, k_sram_tier)).collect();
                builder
                    .layer_with_patches("sram_tier", t.t_tier_m, t.k_underfill, sram_patches)
                    .layer("bond", t.t_bond_m, t.k_bond)
                    .layer_with_patches("array_tier", t.t_tier_m, t.k_underfill, silicon.clone())
            }
        };
        let model = Arc::new(
            builder
                .layer("tim", t.t_tim_m, t.k_tim)
                .layer("lid", t.t_lid_m, t.k_lid)
                .convection(t.convection_k_per_w, t.ambient_c)
                .build(),
        );
        self.thermal_cache.write().expect("cache lock poisoned").insert(key, Arc::clone(&model));
        model
    }

    /// Evaluates one design under the given constraints.
    pub fn evaluate(&self, design: &McmDesign, constraints: &Constraints) -> McmEvaluation {
        let mut eval_span = trace::span("eval.design");
        if trace::enabled() {
            eval_span.field("array", Json::U64(u64::from(design.chiplet.array_dim)));
            eval_span.field("sram_kib", Json::U64(design.chiplet.sram_kib_per_bank));
            eval_span.field("ics_um", Json::U64(u64::from(design.ics_um)));
            eval_span.field("freq_mhz", Json::U64(u64::from(design.freq_mhz)));
        }
        match self.evaluate_prelude(design, constraints) {
            EvalPrelude::Done { eval, lazy_skip } => {
                eval_span.field("feasible", Json::Bool(false));
                if lazy_skip {
                    eval_span.field("lazy_skip", Json::Bool(true));
                }
                *eval
            }
            EvalPrelude::Thermal(pending) => {
                let ta = if self.opts.thermal_enabled {
                    self.thermal_analysis_full(
                        design,
                        &pending.geometry,
                        &pending.layout,
                        &pending.sched,
                        &pending.dnn_power,
                    )
                } else {
                    self.disabled_thermal(&pending)
                };
                let eval = self.evaluate_epilogue(*pending, ta, constraints);
                if trace::enabled() {
                    eval_span.field("feasible", Json::Bool(eval.violations.is_empty()));
                    eval_span.field("peak_c", Json::F64(eval.peak_temp_c));
                    eval_span.field("cost_usd", Json::F64(eval.mcm_cost_usd));
                }
                eval
            }
        }
    }

    /// The exact pre-thermal pipeline of [`Evaluator::evaluate`] — steps
    /// 1–4 (mesh, performance, schedule, DRAM) plus the lazy gate — with
    /// the thermal stage left pending. Serial `evaluate` and the batched
    /// paths both build on this, so their arithmetic is identical term for
    /// term.
    fn evaluate_prelude(&self, design: &McmDesign, constraints: &Constraints) -> EvalPrelude {
        let chiplet = design.chiplet;
        let tech = &self.opts.tech;
        let geometry = chiplet.geometry(tech);
        let mut violations = Vec::new();

        if design.ics_um > constraints.max_ics_um {
            violations.push(Violation::Ics { ics_um: design.ics_um });
        }

        // 1. Mesh estimation (area feasibility).
        let Some(layout) = estimate_mesh(
            geometry.side_mm(),
            design.ics_mm(),
            constraints.interposer_w_mm,
            constraints.interposer_h_mm,
            self.workload.len() as u32,
        ) else {
            violations.push(Violation::Area { chiplet_side_mm: geometry.side_mm() });
            return EvalPrelude::Done {
                eval: Box::new(McmEvaluation {
                    design: *design,
                    mesh: None,
                    layout: None,
                    schedule: None,
                    latency_s: f64::INFINITY,
                    achieved_fps: 0.0,
                    peak_temp_c: f64::INFINITY,
                    thermal_runaway: false,
                    degraded: false,
                    chip_power_w: f64::INFINITY,
                    dram_power_w: f64::INFINITY,
                    total_power_w: f64::INFINITY,
                    dram_channels: 0,
                    mcm_cost_usd: f64::INFINITY,
                    ops: 0.0,
                    violations,
                }),
                lazy_skip: false,
            };
        };

        // 2. Performance and per-DNN dynamic power.
        let reports = self.perf(&chiplet);
        let freq_hz = design.freq_hz();
        let dnn_cycles: Vec<u64> = reports.iter().map(|r| r.total_cycles).collect();
        let dnn_power: Vec<DynamicPower> =
            reports.iter().map(|r| dynamic_power(r, &chiplet, tech, freq_hz)).collect();
        let dnn_power_total: Vec<f64> = dnn_power.iter().map(DynamicPower::total_w).collect();

        // 3. Schedule (corner-first, power-density- and latency-aware by
        //    default; the naive policy exists for ablation).
        let order = layout.corner_first_order();
        let sched = match self.opts.scheduler {
            SchedulerPolicy::CornerFirstPowerAware => {
                schedule(&order, &dnn_cycles, &dnn_power_total)
            }
            SchedulerPolicy::NaiveRoundRobin => {
                schedule_naive(order.len(), &dnn_cycles, &dnn_power_total)
            }
        };
        let latency_s = sched.makespan_cycles() as f64 / freq_hz;
        let achieved_fps = 1.0 / latency_s;
        if achieved_fps + 1e-9 < constraints.min_fps {
            violations.push(Violation::Latency { achieved_fps });
        }

        // 4. DRAM: channels per chiplet from its most demanding DNN's
        //    *sustained* bandwidth (double buffering smooths per-layer
        //    bursts; a 25% margin covers prefetch overlap), traffic over
        //    the frame window. A chiplet running several DNNs sequentially
        //    gets the maximum channel count across them (Sec. III-B).
        let window_s = constraints.frame_window_s();
        let mut dram_channels = 0u32;
        let mut dram_bytes = 0.0f64;
        for q in &sched.assignments {
            if q.is_empty() {
                continue;
            }
            let demand = q
                .iter()
                .map(|d| reports[d.0].avg_dram_bytes_per_cycle() * freq_hz * DRAM_BURST_MARGIN)
                .fold(0.0, f64::max);
            dram_channels += self.dram.channels_for_peak_bandwidth(demand);
            dram_bytes += q.iter().map(|d| reports[d.0].dram_traffic.total() as f64).sum::<f64>();
        }
        let dram_power = self.dram.power(DramUsage {
            bytes_transferred: dram_bytes,
            window_s,
            channels: dram_channels,
        });
        let dram_power_w = dram_power.total_w();

        // Lazy search mode: a dynamic-power lower bound (leakage is
        // non-negative) and prior violations let us skip the expensive
        // steady-state solve for designs the optimizer must reject anyway.
        let dyn_worst_phase_w = sched
            .phases()
            .iter()
            .map(|phase| phase.iter().map(|&(_, d)| dnn_power_total[d.0]).sum::<f64>())
            .fold(0.0, f64::max);
        if self.opts.lazy && self.opts.thermal_enabled {
            let mut lazy_violations = violations.clone();
            if dyn_worst_phase_w + dram_power_w > constraints.power_budget_w {
                lazy_violations.push(Violation::Power {
                    total_w: dyn_worst_phase_w + dram_power_w,
                });
            }
            if !lazy_violations.is_empty() {
                let total_macs: u64 = reports.iter().map(|r| r.total_macs()).sum();
                return EvalPrelude::Done {
                    eval: Box::new(McmEvaluation {
                        design: *design,
                        mesh: Some(layout.mesh),
                        schedule: Some(sched),
                        mcm_cost_usd: self.opts.cost.mcm_cost_usd(
                            layout.mesh.count(),
                            &geometry,
                            chiplet.integration,
                            constraints.interposer_area_mm2(),
                        ),
                        layout: Some(layout),
                        latency_s,
                        achieved_fps,
                        peak_temp_c: f64::NAN,
                        thermal_runaway: false,
                        degraded: false,
                        chip_power_w: dyn_worst_phase_w,
                        dram_power_w,
                        total_power_w: dyn_worst_phase_w + dram_power_w,
                        dram_channels,
                        ops: 2.0 * total_macs as f64 / latency_s,
                        violations: lazy_violations,
                    }),
                    lazy_skip: true,
                };
            }
        }

        let total_macs: u64 = reports.iter().map(|r| r.total_macs()).sum();
        EvalPrelude::Thermal(Box::new(ThermalPending {
            design: *design,
            geometry,
            layout,
            sched,
            dnn_power,
            dnn_power_total,
            violations,
            latency_s,
            achieved_fps,
            dram_power_w,
            dram_channels,
            total_macs,
        }))
    }

    /// The temperature-unaware stand-in for the thermal stage: worst-phase
    /// dynamic power plus (optionally) reference-temperature leakage,
    /// summed term for term as `evaluate` always has, with the peak pinned
    /// at ambient.
    fn disabled_thermal(&self, p: &ThermalPending) -> ThermalAnalysis {
        let chiplet = p.design.chiplet;
        let tech = &self.opts.tech;
        let mut worst = 0.0f64;
        for phase in p.sched.phases() {
            let dyn_w: f64 = phase.iter().map(|&(_, d)| p.dnn_power_total[d.0]).sum();
            let leak: f64 = (0..p.layout.mesh.count())
                .map(|_| {
                    array_leakage_w(&chiplet, tech, tech.ambient_c, self.opts.leakage)
                        + sram_leakage_w(&chiplet, tech, tech.ambient_c, self.opts.leakage)
                })
                .sum();
            worst = worst.max(dyn_w + leak);
        }
        ThermalAnalysis {
            peak_c: tech.ambient_c,
            runaway: false,
            worst_power_w: worst,
            hottest_field: None,
            degraded: false,
            solver_failed: false,
        }
    }

    /// Folds a thermal analysis into the prelude's pipeline products —
    /// steps 5b–6 of `evaluate` (thermal/power violations, cost, OPS).
    fn evaluate_epilogue(
        &self,
        p: ThermalPending,
        ta: ThermalAnalysis,
        constraints: &Constraints,
    ) -> McmEvaluation {
        let mut violations = p.violations;
        let (peak_temp_c, thermal_runaway, chip_power_w) =
            (ta.peak_c, ta.runaway, ta.worst_power_w);
        if ta.solver_failed {
            // No trustworthy temperature: reject the design instead of
            // accepting it on an unknown thermal profile.
            violations.push(Violation::SolverFailure);
        } else if thermal_runaway {
            violations.push(Violation::ThermalRunaway);
        } else if self.opts.thermal_enabled && peak_temp_c > constraints.temp_budget_c {
            violations.push(Violation::Thermal { peak_c: peak_temp_c });
        }

        let total_power_w = chip_power_w + p.dram_power_w;
        if total_power_w > constraints.power_budget_w {
            violations.push(Violation::Power { total_w: total_power_w });
        }

        // 6. Cost and throughput.
        let mcm_cost_usd = self.opts.cost.mcm_cost_usd(
            p.layout.mesh.count(),
            &p.geometry,
            p.design.chiplet.integration,
            constraints.interposer_area_mm2(),
        );
        let ops = 2.0 * p.total_macs as f64 / p.latency_s;

        McmEvaluation {
            design: p.design,
            mesh: Some(p.layout.mesh),
            schedule: Some(p.sched),
            layout: Some(p.layout),
            latency_s: p.latency_s,
            achieved_fps: p.achieved_fps,
            peak_temp_c,
            thermal_runaway,
            degraded: ta.degraded,
            chip_power_w,
            dram_power_w: p.dram_power_w,
            total_power_w,
            dram_channels: p.dram_channels,
            mcm_cost_usd,
            ops,
            violations,
        }
    }

    /// Steady-state analysis of every schedule phase with
    /// leakage–temperature co-iteration.
    fn thermal_analysis_full(
        &self,
        design: &McmDesign,
        geometry: &ChipletGeometry,
        layout: &McmLayout,
        sched: &Schedule,
        dnn_power: &[DynamicPower],
    ) -> ThermalAnalysis {
        let chiplet = design.chiplet;
        let tech = &self.opts.tech;
        let mut thermal_span = trace::span("eval.thermal");
        thermal_span.field("phases", Json::U64(sched.phases().len() as u64));
        let model = self.thermal_model(layout, geometry, chiplet.integration);
        let n_chiplets = layout.mesh.count() as usize;
        let (array_tier, sram_tier) = device_tiers(chiplet.integration);
        let ranges = chip_cell_ranges(layout, &model);

        let mut peak = tech.ambient_c;
        let mut worst_power = 0.0f64;
        let mut guess: Option<Vec<f64>> = None;
        let mut hottest_field: Option<tesa_thermal::ThermalField> = None;
        let mut degraded = false;
        let mut pmap = model.zero_power();

        for phase in sched.phases() {
            // Dynamic power per chiplet in this phase.
            let mut dyn_by_chip: Vec<Option<DynamicPower>> = vec![None; n_chiplets];
            for &(chip, dnn) in &phase {
                dyn_by_chip[chip] = Some(dnn_power[dnn.0]);
            }

            // Leakage co-iteration.
            let mut temps = vec![tech.ambient_c; n_chiplets];
            let mut runaway = false;
            let mut last_field: Option<tesa_thermal::ThermalField> = None;
            let mut phase_power = 0.0f64;
            let mut leak_iters = 0usize;
            for _iter in 0..LEAK_MAX_ITERS {
                leak_iters += 1;
                pmap.clear();
                phase_power = self.inject_phase_power(
                    &mut pmap,
                    layout,
                    geometry,
                    &chiplet,
                    &dyn_by_chip,
                    &temps,
                    array_tier,
                    sram_tier,
                );
                // Recoverable solve: the thermal crate degrades through its
                // preconditioner ladder (multigrid -> cold-start Jacobi)
                // before reporting failure; the `eval.thermal.fail` site
                // forces the total-failure path for robustness tests.
                let solved = if faultpoint::fire("eval.thermal.fail") {
                    Err(SolveError { residual: f64::INFINITY })
                } else {
                    model.solve_recoverable(&pmap, guess.as_deref())
                };
                let field = match solved {
                    Ok((field, SolveQuality::Full)) => field,
                    Ok((field, SolveQuality::DegradedJacobi)) => {
                        degraded = true;
                        field
                    }
                    Err(err) => {
                        // Every rung failed: no trustworthy temperature for
                        // this design. Report the failure instead of
                        // panicking (or trusting a diverged field).
                        trace::counter("eval.thermal.solver_failed", 1.0);
                        trace::event("eval.thermal.error", || {
                            vec![("residual", Json::F64(err.residual))]
                        });
                        thermal_span.field("solver_failed", Json::Bool(true));
                        return ThermalAnalysis {
                            peak_c: f64::NAN,
                            runaway: false,
                            worst_power_w: worst_power.max(phase_power),
                            hottest_field: None,
                            degraded,
                            solver_failed: true,
                        };
                    }
                };
                let mut max_delta = 0.0f64;
                for (c, range) in ranges.iter().enumerate() {
                    let t = field.region_mean_c(array_tier, range.0, range.1, range.2, range.3);
                    max_delta = max_delta.max((t - temps[c]).abs());
                    temps[c] = t;
                }
                // Warm-start buffer for the next solve; copy into the
                // existing allocation rather than cloning the field.
                match guess.as_mut() {
                    Some(g) => g.copy_from_slice(field.as_slice()),
                    None => guess = Some(field.as_slice().to_vec()),
                }
                let converged = max_delta < LEAK_CONVERGENCE_K;
                let diverged = temps.iter().any(|&t| t > RUNAWAY_TEMP_C);
                last_field = Some(field);
                if diverged {
                    runaway = true;
                    break;
                }
                if converged {
                    break;
                }
            }
            trace::event("eval.phase", || {
                let phase_peak = last_field.as_ref().map_or(tech.ambient_c, |f| {
                    f.layer_peak_c(array_tier).max(f.layer_peak_c(sram_tier))
                });
                vec![
                    ("leak_iters", Json::U64(leak_iters as u64)),
                    ("power_w", Json::F64(phase_power)),
                    ("peak_c", Json::F64(phase_peak)),
                    ("runaway", Json::Bool(runaway)),
                ]
            });
            if runaway {
                thermal_span.field("runaway", Json::Bool(true));
                return ThermalAnalysis {
                    peak_c: RUNAWAY_TEMP_C,
                    runaway: true,
                    worst_power_w: phase_power.max(worst_power),
                    hottest_field: last_field,
                    degraded,
                    solver_failed: false,
                };
            }
            if let Some(field) = last_field {
                // Peak junction temperature: hottest cell in the device
                // tiers (the lid/TIM are cooler by construction).
                let phase_peak =
                    field.layer_peak_c(array_tier).max(field.layer_peak_c(sram_tier));
                if phase_peak >= peak || hottest_field.is_none() {
                    hottest_field = Some(field);
                }
                peak = peak.max(phase_peak);
            }
            worst_power = worst_power.max(phase_power);
        }
        if trace::enabled() {
            thermal_span.field("peak_c", Json::F64(peak));
            thermal_span.field("worst_power_w", Json::F64(worst_power));
        }
        ThermalAnalysis {
            peak_c: peak,
            runaway: false,
            worst_power_w: worst_power,
            hottest_field,
            degraded,
            solver_failed: false,
        }
    }

    /// `thermal_analysis_full` for k designs sharing one thermal model:
    /// the leakage co-iterations advance in lockstep, and each step's k
    /// live solves go through `ThermalModel::solve_batch_recoverable` —
    /// one fused multi-RHS batch instead of k serial solves. Each lane
    /// retires (converges, diverges, fails, or exhausts its phases)
    /// independently, exactly when its serial loop would, and warm starts
    /// stay per design, so every returned analysis is bit-identical to a
    /// serial `thermal_analysis_full` call.
    ///
    /// Two observable differences from looping serially, both confined to
    /// diagnostics: the `eval.thermal.fail` faultpoint fires once per
    /// *live lane per lockstep step* (run order) rather than per design
    /// sequentially, and trace events interleave across lanes (one
    /// `eval.thermal` span covers the whole group). `eval.phase` events
    /// carry identical fields per design.
    fn thermal_analysis_group(
        &self,
        model: &ThermalModel,
        items: &[&ThermalPending],
    ) -> Vec<ThermalAnalysis> {
        if let [p] = items {
            // Singleton groups take the serial path verbatim (span and
            // faultpoint order included).
            return vec![self.thermal_analysis_full(
                &p.design, &p.geometry, &p.layout, &p.sched, &p.dnn_power,
            )];
        }
        let tech = &self.opts.tech;
        let mut thermal_span = trace::span("eval.thermal");
        if trace::enabled() {
            thermal_span.field("batch", Json::U64(items.len() as u64));
            thermal_span.field(
                "phases",
                Json::U64(items.iter().map(|p| p.sched.phases().len() as u64).sum()),
            );
        }

        let mut runs: Vec<GroupRun> = items
            .iter()
            .map(|p| {
                let (array_tier, sram_tier) = device_tiers(p.design.chiplet.integration);
                let mut run = GroupRun {
                    pending: p,
                    phases: p.sched.phases(),
                    array_tier,
                    sram_tier,
                    n_chiplets: p.layout.mesh.count() as usize,
                    ranges: chip_cell_ranges(&p.layout, model),
                    phase_idx: 0,
                    dyn_by_chip: Vec::new(),
                    temps: Vec::new(),
                    leak_iters: 0,
                    phase_power: 0.0,
                    guess: None,
                    pmap: model.zero_power(),
                    last_field: None,
                    peak: tech.ambient_c,
                    worst_power: 0.0,
                    hottest_field: None,
                    degraded: false,
                    failed_now: false,
                    done: None,
                };
                // Phase-less schedules retire immediately at ambient.
                run.enter_phase_or_finish(tech.ambient_c);
                run
            })
            .collect();

        loop {
            let live: Vec<usize> = (0..runs.len()).filter(|&i| runs[i].done.is_none()).collect();
            if live.is_empty() {
                break;
            }
            // Advance each live lane's co-iteration: rebuild its power map
            // from the current temperatures and fire the failure-injection
            // site once per lane, in lane order.
            for &i in &live {
                let run = &mut runs[i];
                run.leak_iters += 1;
                run.pmap.clear();
                run.phase_power = self.inject_phase_power(
                    &mut run.pmap,
                    &run.pending.layout,
                    &run.pending.geometry,
                    &run.pending.design.chiplet,
                    &run.dyn_by_chip,
                    &run.temps,
                    run.array_tier,
                    run.sram_tier,
                );
                run.failed_now = faultpoint::fire("eval.thermal.fail");
            }
            // One batched solve over the lanes that did not fault.
            let solving: Vec<usize> =
                live.iter().copied().filter(|&i| !runs[i].failed_now).collect();
            let requests: Vec<BatchSolveRequest<'_>> = solving
                .iter()
                .map(|&i| BatchSolveRequest {
                    power: &runs[i].pmap,
                    guess: runs[i].guess.as_deref(),
                })
                .collect();
            let solved = model.solve_batch_recoverable(&requests);
            drop(requests);
            // Fold results back in lane order with exactly the serial
            // inner loop's decisions.
            let mut solved = solved.into_iter();
            for &i in &live {
                let run = &mut runs[i];
                let outcome = if run.failed_now {
                    Err(SolveError { residual: f64::INFINITY })
                } else {
                    solved.next().expect("one result per solve request")
                };
                let field = match outcome {
                    Ok((field, SolveQuality::Full)) => field,
                    Ok((field, SolveQuality::DegradedJacobi)) => {
                        run.degraded = true;
                        field
                    }
                    Err(err) => {
                        trace::counter("eval.thermal.solver_failed", 1.0);
                        trace::event("eval.thermal.error", || {
                            vec![("residual", Json::F64(err.residual))]
                        });
                        run.done = Some(ThermalAnalysis {
                            peak_c: f64::NAN,
                            runaway: false,
                            worst_power_w: run.worst_power.max(run.phase_power),
                            hottest_field: None,
                            degraded: run.degraded,
                            solver_failed: true,
                        });
                        continue;
                    }
                };
                let mut max_delta = 0.0f64;
                for (c, range) in run.ranges.iter().enumerate() {
                    let t = field.region_mean_c(run.array_tier, range.0, range.1, range.2, range.3);
                    max_delta = max_delta.max((t - run.temps[c]).abs());
                    run.temps[c] = t;
                }
                match run.guess.as_mut() {
                    Some(g) => g.copy_from_slice(field.as_slice()),
                    None => run.guess = Some(field.as_slice().to_vec()),
                }
                let converged = max_delta < LEAK_CONVERGENCE_K;
                let diverged = run.temps.iter().any(|&t| t > RUNAWAY_TEMP_C);
                run.last_field = Some(field);
                if diverged {
                    run.emit_phase_event(tech.ambient_c, true);
                    run.done = Some(ThermalAnalysis {
                        peak_c: RUNAWAY_TEMP_C,
                        runaway: true,
                        worst_power_w: run.phase_power.max(run.worst_power),
                        hottest_field: run.last_field.take(),
                        degraded: run.degraded,
                        solver_failed: false,
                    });
                    continue;
                }
                if converged || run.leak_iters >= LEAK_MAX_ITERS {
                    run.emit_phase_event(tech.ambient_c, false);
                    if let Some(field) = run.last_field.take() {
                        let phase_peak = field
                            .layer_peak_c(run.array_tier)
                            .max(field.layer_peak_c(run.sram_tier));
                        if phase_peak >= run.peak || run.hottest_field.is_none() {
                            run.hottest_field = Some(field);
                        }
                        run.peak = run.peak.max(phase_peak);
                    }
                    run.worst_power = run.worst_power.max(run.phase_power);
                    run.phase_idx += 1;
                    run.enter_phase_or_finish(tech.ambient_c);
                }
            }
        }
        runs.into_iter().map(|r| r.done.expect("every lane retired")).collect()
    }

    /// Evaluates many `(design, constraints)` pairs through the memo at
    /// once, grouping cache misses that share a thermal model (same
    /// layout and integration — the key of the model memo) so their
    /// per-phase solves run as lockstep multi-RHS batches instead of one
    /// serial solve per design.
    ///
    /// Results are identical, field for field and bit for bit, to calling
    /// [`Evaluator::evaluate_cached`] on each pair in order — the batched
    /// engine performs each design's exact serial arithmetic sequence (see
    /// `tesa_thermal::ThermalModel::solve_batch_recoverable`). The
    /// pre-thermal pipeline of the misses fans out across `threads` pool
    /// lanes; the memo is probed first, so work distribution and chunk
    /// granularity reflect only the designs that actually need computing.
    pub fn evaluate_cached_batch(
        &self,
        queries: &[(&McmDesign, &Constraints)],
        threads: usize,
    ) -> Vec<Arc<McmEvaluation>> {
        let mut out: Vec<Option<Arc<McmEvaluation>>> = vec![None; queries.len()];
        let mut misses: Vec<usize> = Vec::new();
        let mut first_at: HashMap<EvalKey, usize> = HashMap::new();
        let mut dups: Vec<(usize, usize)> = Vec::new();
        {
            let cache = self.eval_cache.read().expect("cache lock poisoned");
            for (i, &(design, constraints)) in queries.iter().enumerate() {
                let key: EvalKey = (*design, constraints_key(constraints));
                if let Some(hit) = cache.get(&key) {
                    self.eval_hits.fetch_add(1, Ordering::Relaxed);
                    trace::counter("eval.cache.hit", 1.0);
                    out[i] = Some(Arc::clone(hit));
                } else if let Some(&first) = first_at.get(&key) {
                    // A serial loop would compute the first occurrence and
                    // hit the memo here; keep the stats equivalent.
                    self.eval_hits.fetch_add(1, Ordering::Relaxed);
                    trace::counter("eval.cache.hit", 1.0);
                    dups.push((i, first));
                } else {
                    self.eval_misses.fetch_add(1, Ordering::Relaxed);
                    trace::counter("eval.cache.miss", 1.0);
                    first_at.insert(key, i);
                    misses.push(i);
                }
            }
        }

        if !misses.is_empty() {
            // Pre-thermal pipeline of every miss, fanned out over the pool.
            let preludes: Vec<EvalPrelude> = pool::map_dynamic(threads, misses.len(), |j| {
                let (design, constraints) = queries[misses[j]];
                self.evaluate_prelude(design, constraints)
            });

            // Already-decided designs finish now; the rest group by
            // thermal-model key, in first-appearance order.
            let mut pendings: Vec<Option<Box<ThermalPending>>> = Vec::with_capacity(misses.len());
            let mut groups: Vec<(ThermalKey, Vec<usize>)> = Vec::new();
            for (j, prelude) in preludes.into_iter().enumerate() {
                match prelude {
                    EvalPrelude::Done { eval, .. } => {
                        pendings.push(None);
                        self.finish_batched(misses[j], *eval, queries, &mut out);
                    }
                    EvalPrelude::Thermal(pending) => {
                        if self.opts.thermal_enabled {
                            let key = Self::thermal_key(
                                &pending.layout,
                                pending.design.chiplet.integration,
                            );
                            match groups.iter_mut().find(|(k, _)| *k == key) {
                                Some((_, members)) => members.push(j),
                                None => groups.push((key, vec![j])),
                            }
                            pendings.push(Some(pending));
                        } else {
                            let ta = self.disabled_thermal(&pending);
                            let eval =
                                self.evaluate_epilogue(*pending, ta, queries[misses[j]].1);
                            pendings.push(None);
                            self.finish_batched(misses[j], eval, queries, &mut out);
                        }
                    }
                }
            }

            for (_, members) in &groups {
                let items: Vec<&ThermalPending> = members
                    .iter()
                    .map(|&j| pendings[j].as_deref().expect("grouped pending present"))
                    .collect();
                let model = self.thermal_model(
                    &items[0].layout,
                    &items[0].geometry,
                    items[0].design.chiplet.integration,
                );
                let analyses = self.thermal_analysis_group(&model, &items);
                drop(items);
                for (&j, ta) in members.iter().zip(analyses) {
                    let pending = pendings[j].take().expect("grouped pending present");
                    let eval = self.evaluate_epilogue(*pending, ta, queries[misses[j]].1);
                    self.finish_batched(misses[j], eval, queries, &mut out);
                }
            }
        }

        for (i, first) in dups {
            out[i] = Some(Arc::clone(out[first].as_ref().expect("canonical query resolved")));
        }
        out.into_iter().map(|e| e.expect("every query resolved")).collect()
    }

    /// Memoizes and publishes one batched-path evaluation, emitting an
    /// `eval.design` *event* carrying the fields the serial path puts on
    /// its per-design span (the batched paths have no per-design span —
    /// their designs interleave across one lockstep group).
    fn finish_batched(
        &self,
        i: usize,
        eval: McmEvaluation,
        queries: &[(&McmDesign, &Constraints)],
        out: &mut [Option<Arc<McmEvaluation>>],
    ) {
        trace::event("eval.design", || {
            vec![
                ("array", Json::U64(u64::from(eval.design.chiplet.array_dim))),
                ("sram_kib", Json::U64(eval.design.chiplet.sram_kib_per_bank)),
                ("ics_um", Json::U64(u64::from(eval.design.ics_um))),
                ("freq_mhz", Json::U64(u64::from(eval.design.freq_mhz))),
                ("feasible", Json::Bool(eval.violations.is_empty())),
                ("peak_c", Json::F64(eval.peak_temp_c)),
                ("cost_usd", Json::F64(eval.mcm_cost_usd)),
            ]
        });
        let key: EvalKey = (*queries[i].0, constraints_key(queries[i].1));
        let arc = Arc::new(eval);
        self.eval_cache.write().expect("cache lock poisoned").insert(key, Arc::clone(&arc));
        out[i] = Some(arc);
    }

    /// The converged temperature field of the hottest schedule phase of
    /// `design` — the data behind the paper's Fig. 6 thermal maps. Returns
    /// `None` when the chiplet does not fit the interposer or the thermal
    /// solver is disabled. For a design in thermal runaway, the last
    /// (diverging) field is returned.
    pub fn thermal_map(
        &self,
        design: &McmDesign,
        constraints: &Constraints,
    ) -> Option<tesa_thermal::ThermalField> {
        if !self.opts.thermal_enabled {
            return None;
        }
        let chiplet = design.chiplet;
        let tech = &self.opts.tech;
        let geometry = chiplet.geometry(tech);
        let layout = estimate_mesh(
            geometry.side_mm(),
            design.ics_mm(),
            constraints.interposer_w_mm,
            constraints.interposer_h_mm,
            self.workload.len() as u32,
        )?;
        let reports = self.perf(&chiplet);
        let freq_hz = design.freq_hz();
        let dnn_cycles: Vec<u64> = reports.iter().map(|r| r.total_cycles).collect();
        let dnn_power: Vec<DynamicPower> =
            reports.iter().map(|r| dynamic_power(r, &chiplet, tech, freq_hz)).collect();
        let dnn_power_total: Vec<f64> = dnn_power.iter().map(DynamicPower::total_w).collect();
        let sched = match self.opts.scheduler {
            SchedulerPolicy::CornerFirstPowerAware => {
                schedule(&layout.corner_first_order(), &dnn_cycles, &dnn_power_total)
            }
            SchedulerPolicy::NaiveRoundRobin => {
                schedule_naive(layout.mesh.count() as usize, &dnn_cycles, &dnn_power_total)
            }
        };
        self.thermal_analysis_full(design, &geometry, &layout, &sched, &dnn_power).hottest_field
    }

    /// Transient thermal simulation of the actual schedule timeline — an
    /// extension over the paper's steady-state-per-phase analysis.
    ///
    /// The frame's phases execute back to back (each for the duration of
    /// its longest DNN), repeated for `frames` frames, with leakage
    /// re-evaluated from the evolving per-chiplet temperatures at every
    /// step. Returns `None` when the design does not fit the interposer or
    /// the thermal solver is disabled.
    ///
    /// The per-step peak trace quantifies how conservative the paper's
    /// steady-state analysis is: short frames never reach the steady-state
    /// temperature the optimizer guards against.
    pub fn transient_trace(
        &self,
        design: &McmDesign,
        constraints: &Constraints,
        dt_s: f64,
        frames: usize,
    ) -> Option<TransientTrace> {
        if !self.opts.thermal_enabled {
            return None;
        }
        let chiplet = design.chiplet;
        let tech = &self.opts.tech;
        let geometry = chiplet.geometry(tech);
        let layout = estimate_mesh(
            geometry.side_mm(),
            design.ics_mm(),
            constraints.interposer_w_mm,
            constraints.interposer_h_mm,
            self.workload.len() as u32,
        )?;
        let reports = self.perf(&chiplet);
        let freq_hz = design.freq_hz();
        let dnn_cycles: Vec<u64> = reports.iter().map(|r| r.total_cycles).collect();
        let dnn_power: Vec<DynamicPower> =
            reports.iter().map(|r| dynamic_power(r, &chiplet, tech, freq_hz)).collect();
        let dnn_power_total: Vec<f64> = dnn_power.iter().map(DynamicPower::total_w).collect();
        let sched = schedule(&layout.corner_first_order(), &dnn_cycles, &dnn_power_total);

        let model = self.thermal_model(&layout, &geometry, chiplet.integration);
        let (array_tier, sram_tier) = device_tiers(chiplet.integration);
        let n_chiplets = layout.mesh.count() as usize;
        let ranges = chip_cell_ranges(&layout, &model);

        let mut field = model.ambient_field();
        let mut times = Vec::new();
        let mut peaks = Vec::new();
        let mut t = 0.0f64;
        let mut pmap = model.zero_power();
        for _ in 0..frames {
            for phase in sched.phases() {
                let duration = phase
                    .iter()
                    .map(|&(_, d)| dnn_cycles[d.0] as f64 / freq_hz)
                    .fold(0.0, f64::max);
                let steps = (duration / dt_s).ceil().max(1.0) as usize;
                let mut dyn_by_chip: Vec<Option<DynamicPower>> = vec![None; n_chiplets];
                for &(chip, dnn) in &phase {
                    dyn_by_chip[chip] = Some(dnn_power[dnn.0]);
                }
                for _ in 0..steps {
                    // Leakage from the current per-chiplet temperatures.
                    let temps: Vec<f64> = ranges
                        .iter()
                        .map(|r| field.region_mean_c(array_tier, r.0, r.1, r.2, r.3))
                        .collect();
                    pmap.clear();
                    self.inject_phase_power(
                        &mut pmap,
                        &layout,
                        &geometry,
                        &chiplet,
                        &dyn_by_chip,
                        &temps,
                        array_tier,
                        sram_tier,
                    );
                    field = model.transient_step(&pmap, &field, dt_s);
                    t += dt_s;
                    times.push(t);
                    peaks.push(
                        field.layer_peak_c(array_tier).max(field.layer_peak_c(sram_tier)),
                    );
                }
            }
        }
        Some(TransientTrace { times_s: times, peaks_c: peaks })
    }

    /// Rasterizes one phase's power into `pmap`; returns the total watts.
    #[allow(clippy::too_many_arguments)]
    fn inject_phase_power(
        &self,
        pmap: &mut PowerMap,
        layout: &McmLayout,
        geometry: &ChipletGeometry,
        chiplet: &ChipletConfig,
        dyn_by_chip: &[Option<DynamicPower>],
        temps: &[f64],
        array_tier: usize,
        sram_tier: usize,
    ) -> f64 {
        let tech = &self.opts.tech;
        let mut total = 0.0;
        for (c, rect) in layout.positions_m.iter().enumerate() {
            let leak_array = array_leakage_w(chiplet, tech, temps[c], self.opts.leakage);
            let leak_sram = sram_leakage_w(chiplet, tech, temps[c], self.opts.leakage);
            let dynp = dyn_by_chip[c].unwrap_or_default();
            match chiplet.integration {
                Integration::TwoD => {
                    let array_r = layout.array_region_2d(c, geometry);
                    let sram_r = layout.sram_region_2d(c, geometry);
                    pmap.add_uniform_rect(array_tier, array_r, dynp.array_w + leak_array);
                    pmap.add_uniform_rect(sram_tier, sram_r, dynp.sram_w + leak_sram);
                }
                Integration::ThreeD => {
                    pmap.add_uniform_rect(array_tier, *rect, dynp.array_w + leak_array);
                    pmap.add_uniform_rect(
                        sram_tier,
                        *rect,
                        dynp.sram_w + dynp.tsv_w + leak_sram,
                    );
                }
            }
            total += dynp.total_w() + leak_array + leak_sram;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tesa_workloads::arvr_suite;

    fn design(dim: u32, kib: u64, integration: Integration, ics: u32, mhz: u32) -> McmDesign {
        McmDesign {
            chiplet: ChipletConfig { array_dim: dim, sram_kib_per_bank: kib, integration },
            ics_um: ics,
            freq_mhz: mhz,
        }
    }

    fn evaluator() -> Evaluator {
        // A coarser grid keeps unit tests quick; integration tests use 64.
        Evaluator::new(arvr_suite(), EvalOptions { grid_cells: 32, ..Default::default() })
    }

    #[test]
    fn oversized_chiplet_reports_area_violation() {
        // Even the largest Table II chiplet (256x256, 12 MiB SRAM) fits an
        // 8x8 mm interposer alone; a truly oversized one must not.
        let e = evaluator();
        let d = design(1024, 4096, Integration::TwoD, 0, 400);
        let eval = e.evaluate(&d, &Constraints::default());
        assert!(eval
            .violations
            .iter()
            .any(|v| matches!(v, Violation::Area { .. })));
        assert!(!eval.is_feasible());
    }

    #[test]
    fn tiny_chiplet_misses_latency() {
        let e = evaluator();
        let d = design(16, 8, Integration::TwoD, 500, 400);
        let eval = e.evaluate(&d, &Constraints::edge_device(30.0, 85.0));
        assert!(eval
            .violations
            .iter()
            .any(|v| matches!(v, Violation::Latency { .. })), "{:?}", eval.violations);
    }

    #[test]
    fn excessive_ics_flagged() {
        let e = evaluator();
        let d = design(64, 128, Integration::TwoD, 1500, 400);
        let eval = e.evaluate(&d, &Constraints::default());
        assert!(eval.violations.iter().any(|v| matches!(v, Violation::Ics { .. })));
    }

    #[test]
    fn midsize_2d_design_evaluates_fully() {
        let e = evaluator();
        let d = design(128, 512, Integration::TwoD, 500, 400);
        let eval = e.evaluate(&d, &Constraints::edge_device(15.0, 85.0));
        assert!(eval.mesh.is_some());
        assert!(eval.latency_s.is_finite() && eval.latency_s > 0.0);
        assert!(eval.peak_temp_c > 45.0, "powered silicon must warm up");
        assert!(eval.mcm_cost_usd > 0.0 && eval.mcm_cost_usd.is_finite());
        assert!(eval.dram_power_w > 0.0);
        assert!(eval.ops > 0.0);
        assert!(eval.dram_channels >= eval.schedule.as_ref().unwrap().active_chiplets() as u32);
    }

    #[test]
    fn perf_cache_hits_across_ics() {
        let e = evaluator();
        let d1 = design(96, 256, Integration::TwoD, 0, 400);
        let d2 = design(96, 256, Integration::TwoD, 1000, 400);
        let _ = e.evaluate(&d1, &Constraints::default());
        let before = Arc::strong_count(&e.perf(&d1.chiplet));
        let _ = e.evaluate(&d2, &Constraints::default());
        // Same (array, SRAM) key: the cache entry is reused, not rebuilt.
        assert!(Arc::strong_count(&e.perf(&d2.chiplet)) >= before);
    }

    #[test]
    fn higher_frequency_is_faster_but_hotter() {
        let e = evaluator();
        let d400 = design(128, 512, Integration::TwoD, 500, 400);
        let d500 = design(128, 512, Integration::TwoD, 500, 500);
        let c = Constraints::edge_device(15.0, 85.0);
        let e400 = e.evaluate(&d400, &c);
        let e500 = e.evaluate(&d500, &c);
        assert!(e500.latency_s < e400.latency_s);
        assert!(e500.peak_temp_c > e400.peak_temp_c);
    }

    #[test]
    fn three_d_same_architecture_is_hotter_than_2d() {
        // Stacking halves the footprint (higher power density) and buries
        // the SRAM tier — 3D must run hotter at iso-architecture.
        let e = evaluator();
        let c = Constraints::edge_device(15.0, 85.0);
        let e2 = e.evaluate(&design(128, 512, Integration::TwoD, 500, 400), &c);
        let e3 = e.evaluate(&design(128, 512, Integration::ThreeD, 500, 400), &c);
        assert!(e3.peak_temp_c > e2.peak_temp_c, "3D {} vs 2D {}", e3.peak_temp_c, e2.peak_temp_c);
    }

    #[test]
    fn temperature_unaware_mode_skips_thermal() {
        let e = Evaluator::new(
            arvr_suite(),
            EvalOptions { grid_cells: 32, ..EvalOptions::temperature_unaware() },
        );
        let eval = e.evaluate(&design(128, 512, Integration::TwoD, 500, 400), &Constraints::default());
        assert_eq!(eval.peak_temp_c, e.options().tech.ambient_c);
        assert!(!eval.violations.iter().any(|v| matches!(v, Violation::Thermal { .. })));
    }

    #[test]
    fn eval_cache_counts_hits_and_misses() {
        let e = evaluator();
        let d = design(96, 256, Integration::TwoD, 500, 400);
        let c = Constraints::default();
        assert_eq!(e.eval_cache_stats(), (0, 0));
        let first = e.evaluate_cached(&d, &c);
        assert_eq!(e.eval_cache_stats(), (0, 1));
        let second = e.evaluate_cached(&d, &c);
        let _ = e.evaluate_cached(&d, &c);
        assert_eq!(e.eval_cache_stats(), (2, 1));
        assert!(Arc::ptr_eq(&first, &second), "hit returns the cached value");
    }

    #[test]
    fn eval_cache_evicts_oldest_beyond_capacity() {
        let e = evaluator();
        let d = design(96, 256, Integration::TwoD, 500, 400);
        let c = Constraints::default();
        let eval = e.evaluate_cached(&d, &c);
        {
            // Flood the memo with synthetic keys; the real entry is the
            // oldest and must be the one evicted.
            let mut cache = e.eval_cache.write().unwrap();
            for f in 0..EVAL_CACHE_CAP as u32 {
                let mut k: EvalKey = (d, constraints_key(&c));
                k.0.freq_mhz = 100_000 + f;
                cache.insert(k, Arc::clone(&eval));
            }
            assert_eq!(cache.map.len(), EVAL_CACHE_CAP);
            assert_eq!(cache.order.len(), EVAL_CACHE_CAP);
            assert!(cache.get(&(d, constraints_key(&c))).is_none());
        }
        // A re-request recomputes (a miss), it does not fail.
        let again = e.evaluate_cached(&d, &c);
        assert_eq!(again.peak_temp_c, eval.peak_temp_c);
        assert_eq!(e.eval_cache_stats().0, 0, "no hit: the entry was evicted");
    }

    #[test]
    fn perf_and_thermal_caches_evict_beyond_capacity() {
        let e = evaluator();
        let d = design(96, 256, Integration::TwoD, 500, 400);
        let _ = e.evaluate(&d, &Constraints::default());
        {
            // Flood with synthetic keys: both memos must stay bounded and
            // evict their oldest (the real) entry first.
            let report = Arc::clone(e.perf_cache.read().unwrap().get(&(96, 256)).unwrap());
            let mut perf = e.perf_cache.write().unwrap();
            for f in 0..PERF_CACHE_CAP as u32 {
                perf.insert((100_000 + f, 256), Arc::clone(&report));
            }
            assert_eq!(perf.map.len(), PERF_CACHE_CAP);
            assert_eq!(perf.order.len(), PERF_CACHE_CAP);
            assert!(perf.get(&(96, 256)).is_none(), "oldest perf entry evicted");
        }
        {
            let mut thermal = e.thermal_cache.write().unwrap();
            let (&key, model) = thermal.map.iter().next().unwrap();
            let model = Arc::clone(model);
            for f in 0..THERMAL_CACHE_CAP as u32 {
                thermal.insert((u64::from(f), key.1, key.2, key.3, key.4), Arc::clone(&model));
            }
            assert_eq!(thermal.map.len(), THERMAL_CACHE_CAP);
            assert_eq!(thermal.order.len(), THERMAL_CACHE_CAP);
            assert!(thermal.get(&key).is_none(), "oldest thermal entry evicted");
        }
        // The evaluator recomputes what was evicted; nothing breaks.
        let again = e.evaluate(&d, &Constraints::default());
        assert!(again.latency_s.is_finite());
    }

    #[test]
    fn screen_never_contradicts_exact_evaluation() {
        let e = evaluator();
        // Tight thermal budget so the space spans both verdict directions.
        let c = Constraints { temp_budget_c: 70.0, ..Constraints::edge_device(15.0, 70.0) };
        for dim in [64, 128, 192, 256] {
            for integration in [Integration::TwoD, Integration::ThreeD] {
                let d = design(dim, 512, integration, 500, 400);
                let verdict = e.screen(&d, &c);
                let exact = e.evaluate(&d, &c);
                match verdict {
                    ScreenVerdict::ClearlyInfeasible => assert!(
                        !exact.is_feasible(),
                        "screen claimed infeasible but exact is feasible: {d:?}"
                    ),
                    ScreenVerdict::ClearlyFeasible => assert!(
                        exact.is_feasible(),
                        "screen claimed feasible but exact found {:?}: {d:?}",
                        exact.violations
                    ),
                    ScreenVerdict::Ambiguous => {}
                }
            }
        }
    }

    #[test]
    fn screen_is_decisive_without_thermal_solver() {
        let e = Evaluator::new(
            arvr_suite(),
            EvalOptions { grid_cells: 32, ..EvalOptions::temperature_unaware() },
        );
        let c = Constraints::default();
        for dim in [32, 128, 256] {
            let d = design(dim, 256, Integration::TwoD, 500, 400);
            let verdict = e.screen(&d, &c);
            assert_ne!(
                verdict,
                ScreenVerdict::Ambiguous,
                "no thermal solve means the screen is exact: {d:?}"
            );
            assert_eq!(
                verdict == ScreenVerdict::ClearlyFeasible,
                e.evaluate(&d, &c).is_feasible(),
            );
        }
    }

    #[test]
    fn fast_screen_agrees_with_the_full_screen_and_never_poisons_its_memo() {
        let c = Constraints { temp_budget_c: 70.0, ..Constraints::edge_device(15.0, 70.0) };
        for dim in [64, 128, 192, 256] {
            for integration in [Integration::TwoD, Integration::ThreeD] {
                let d = design(dim, 512, integration, 500, 400);
                // Fresh evaluators: both screens must run from scratch.
                let fast = evaluator().screen_infeasible_only(&d, &c);
                let full = evaluator().screen(&d, &c);
                // The infeasible side is identical (same lower-bound
                // solves); the fast path only collapses the feasible side
                // into Ambiguous.
                assert_eq!(fast == ScreenVerdict::ClearlyInfeasible,
                           full == ScreenVerdict::ClearlyInfeasible,
                           "{d:?}");

                // A fast screen followed by a full screen on one evaluator
                // must still reach the full verdict: an infeasible-only
                // Ambiguous is not cacheable.
                let e = evaluator();
                let first = e.screen_infeasible_only(&d, &c);
                assert_eq!(first == ScreenVerdict::ClearlyInfeasible,
                           full == ScreenVerdict::ClearlyInfeasible);
                assert_eq!(e.screen(&d, &c), full, "{d:?}");
            }
        }
    }

    #[test]
    fn screen_reuses_cached_exact_answer() {
        let e = evaluator();
        let d = design(128, 512, Integration::TwoD, 500, 400);
        let c = Constraints::edge_device(15.0, 85.0);
        let exact = e.evaluate_cached(&d, &c);
        let verdict = e.screen(&d, &c);
        assert_eq!(verdict == ScreenVerdict::ClearlyFeasible, exact.is_feasible());
        assert!(e.screen_cache.read().unwrap().map.is_empty(), "no surrogate work needed");
    }

    #[test]
    fn evaluation_is_deterministic() {
        let e = evaluator();
        let d = design(128, 512, Integration::TwoD, 500, 400);
        let c = Constraints::default();
        let a = e.evaluate(&d, &c);
        let b = e.evaluate(&d, &c);
        assert_eq!(a.peak_temp_c, b.peak_temp_c);
        assert_eq!(a.mcm_cost_usd, b.mcm_cost_usd);
        assert_eq!(a.latency_s, b.latency_s);
    }
}
