//! Size an MCM for a *custom* multi-DNN workload.
//!
//! TESA is not tied to the paper's AR/VR suite: any set of independent
//! DNNs works. This example builds a three-DNN drone perception workload
//! (detector + depth + tracker), then asks TESA for a 2D MCM at 400 MHz
//! under a tight 10 W budget. Note the chiplet cap follows the workload:
//! at most three chiplets are placed (one per DNN).
//!
//! Run with: `cargo run --release --example custom_workload`

use tesa::anneal::{optimize, MsaConfig};
use tesa::design::{DesignSpace, Integration};
use tesa::eval::{EvalOptions, Evaluator};
use tesa::{Constraints, Objective};
use tesa_suite::workloads::{zoo, Dnn, Layer, LayerKind, MultiDnnWorkload};

/// A compact single-shot detector head over a MobileNet-style backbone.
fn tiny_detector() -> Dnn {
    let mut layers = zoo::mobilenet_v1().layers().to_vec();
    layers.pop(); // drop the classifier
    layers.push(Layer::new(
        "det_head",
        LayerKind::Conv { ih: 7, iw: 7, ic: 1024, kh: 3, kw: 3, oc: 255, stride: 1, pad: 1 },
    ));
    Dnn::new("TinyDetector", layers)
}

/// A light stereo-depth network at 320x240.
fn stereo_depth() -> Dnn {
    let mut layers = Vec::new();
    let widths = [(320u32, 32u32), (160, 64), (80, 128), (40, 256)];
    let mut in_ch = 6; // stacked stereo pair
    for (i, &(sz, oc)) in widths.iter().enumerate() {
        layers.push(Layer::new(
            format!("enc{i}"),
            LayerKind::Conv { ih: sz, iw: sz * 3 / 4, ic: in_ch, kh: 3, kw: 3, oc, stride: 2, pad: 1 },
        ));
        in_ch = oc;
    }
    layers.push(Layer::new(
        "cost_volume",
        LayerKind::Gemm { m: 256, k: 256, n: 20 * 15 },
    ));
    layers.push(Layer::new(
        "depth_head",
        LayerKind::Conv { ih: 20, iw: 15, ic: 256, kh: 3, kw: 3, oc: 1, stride: 1, pad: 1 },
    ));
    Dnn::new("StereoDepth", layers)
}

/// A small siamese tracker: embedding FCs plus correlation GEMMs.
fn tracker() -> Dnn {
    Dnn::new(
        "Tracker",
        vec![
            Layer::new("embed1", LayerKind::Fc { in_features: 4096, out_features: 1024 }),
            Layer::new("embed2", LayerKind::Fc { in_features: 1024, out_features: 256 }),
            Layer::new("corr", LayerKind::Gemm { m: 256, k: 256, n: 1024 }),
            Layer::new("refine", LayerKind::Gemm { m: 128, k: 256, n: 1024 }),
            Layer::new("box_head", LayerKind::Fc { in_features: 128, out_features: 4 }),
        ],
    )
}

fn main() {
    let workload = MultiDnnWorkload::new(vec![tiny_detector(), stereo_depth(), tracker()]);
    println!("custom workload:");
    for dnn in &workload {
        println!("  {dnn}");
    }

    let evaluator = Evaluator::new(
        workload,
        EvalOptions { lazy: true, ..EvalOptions::default() },
    );
    // A tighter budget than the AR/VR case: a small drone.
    let constraints = Constraints {
        power_budget_w: 10.0,
        ..Constraints::edge_device(30.0, 75.0)
    };
    let space = DesignSpace::tesa_default();

    println!("\nsizing a 2D MCM at 400 MHz under 10 W / 30 fps / 75 C ...");
    let outcome = optimize(
        &evaluator,
        &space,
        Integration::TwoD,
        400,
        &constraints,
        &Objective::balanced(),
        &MsaConfig::default(),
    );
    match outcome.best {
        Some(best) => {
            println!("chosen: {}", best.design.chiplet);
            println!(
                "  mesh {} (cap = 3 DNNs), ICS {} um, peak {:.2} C, total {:.2} W, ${:.2}",
                best.mesh.expect("mesh"),
                best.design.ics_um,
                best.peak_temp_c,
                best.total_power_w,
                best.mcm_cost_usd
            );
        }
        None => println!("no feasible MCM — relax a constraint or reduce frequency"),
    }
}
