//! Technology parameters: 22 nm MAC characteristics, leakage laws, TSVs,
//! package materials, and cooling.
//!
//! The paper takes "representative dynamic power, leakage, and area
//! estimates for a 22 nm MAC" from Shukla et al. (ASP-DAC 2021), 22 nm SRAM
//! estimates from CACTI-7.0, a TSV energy of 1 µW/bit at 400 MHz from Gong
//! et al., and HotSpot material properties from prior work. Those exact
//! numbers are not published as a table, so this module carries calibrated
//! representative constants; `DESIGN.md` documents the calibration targets
//! (the qualitative results the constants must reproduce).

use tesa_memsim::{DramChannelSpec, SramModel};

/// All technology constants used by the TESA models.
///
/// # Examples
///
/// ```
/// use tesa::TechParams;
///
/// let tech = TechParams::default();
/// // One 8-bit MAC at 22 nm costs a fraction of a picojoule per cycle.
/// assert!(tech.mac_energy_pj < 1.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TechParams {
    /// Dynamic energy of one 8-bit MAC operation (PE with local registers)
    /// in pJ. `DP_MAC,freq` of Eq. (2) is `mac_energy_pj * freq`.
    pub mac_energy_pj: f64,
    /// Area of one MAC PE in µm², including local registers and wiring.
    pub mac_area_um2: f64,
    /// Leakage power of one PE at [`TechParams::leak_ref_temp_c`], in µW.
    pub mac_leak_uw: f64,
    /// Exponential leakage-temperature coefficient (1/K):
    /// `P(T) = P(T_ref) * exp(k * (T - T_ref))`, the representative model of
    /// Shukla et al. / Liao et al.
    pub leak_temp_coeff_per_k: f64,
    /// Reference temperature for leakage numbers, °C.
    pub leak_ref_temp_c: f64,

    /// SRAM model (CACTI-7.0 stand-in) for the technology node.
    pub sram: SramModel,

    /// TSV dynamic energy per bit in fJ (paper: 1 µW/bit at 400 MHz
    /// = 2.5 fJ/bit).
    pub tsv_energy_fj_per_bit: f64,
    /// Area per TSV including keep-out zone, in µm² (2 µm diameter and
    /// 2 µm KOZ → a 4x4 µm site).
    pub tsv_area_um2: f64,

    /// DRAM channel specification.
    pub dram_channel: DramChannelSpec,

    /// Ambient temperature, °C (HotSpot default used by the paper).
    pub ambient_c: f64,
    /// Lumped convection resistance to ambient, K/W (limited edge-device
    /// cooling).
    pub convection_k_per_w: f64,

    /// Thermal conductivity of silicon, W/(m·K).
    pub k_silicon: f64,
    /// Thermal conductivity of the underfill/epoxy between chiplets.
    pub k_underfill: f64,
    /// Thermal conductivity of the thermal interface material.
    pub k_tim: f64,
    /// Thermal conductivity of the package lid.
    pub k_lid: f64,
    /// Thermal conductivity of copper (TSVs).
    pub k_copper: f64,
    /// Thermal conductivity of the inter-tier bond/BEOL layer in 3D stacks.
    pub k_bond: f64,

    /// Interposer thickness, m.
    pub t_interposer_m: f64,
    /// Device (chiplet) tier thickness, m.
    pub t_tier_m: f64,
    /// TIM thickness, m.
    pub t_tim_m: f64,
    /// Lid thickness, m.
    pub t_lid_m: f64,
    /// Inter-tier bond layer thickness (3D), m.
    pub t_bond_m: f64,
}

impl TechParams {
    /// The calibrated 22 nm edge-device technology used throughout the
    /// reproduction.
    pub fn edge_22nm() -> Self {
        Self {
            mac_energy_pj: 0.20,
            mac_area_um2: 60.0,
            mac_leak_uw: 9.0,
            leak_temp_coeff_per_k: 0.022,
            leak_ref_temp_c: 45.0,
            sram: SramModel::tech_22nm(),
            tsv_energy_fj_per_bit: 2.5,
            tsv_area_um2: 16.0,
            dram_channel: DramChannelSpec::ddr4_x64_3200(),
            ambient_c: 45.0,
            convection_k_per_w: 0.4,
            k_silicon: 120.0,
            k_underfill: 0.9,
            k_tim: 1.2,
            k_lid: 200.0,
            k_copper: 385.0,
            k_bond: 1.2,
            t_interposer_m: 100e-6,
            t_tier_m: 150e-6,
            t_tim_m: 65e-6,
            t_lid_m: 300e-6,
            t_bond_m: 20e-6,
        }
    }

    /// `DP_MAC,freq` of Eq. (2): dynamic power of one MAC at `freq_hz`,
    /// in watts.
    pub fn mac_dynamic_w(&self, freq_hz: f64) -> f64 {
        self.mac_energy_pj * 1e-12 * freq_hz
    }

    /// TSV dynamic power per bit at `freq_hz`, in watts (`TSV_power,bit`
    /// of Eq. (5)). At 400 MHz this evaluates to the paper's 1 µW/bit.
    pub fn tsv_power_per_bit_w(&self, freq_hz: f64) -> f64 {
        self.tsv_energy_fj_per_bit * 1e-15 * freq_hz
    }

    /// The exponential leakage-temperature scale factor relative to the
    /// reference temperature.
    pub fn leakage_scale(&self, temp_c: f64) -> f64 {
        (self.leak_temp_coeff_per_k * (temp_c - self.leak_ref_temp_c)).exp()
    }
}

impl Default for TechParams {
    fn default() -> Self {
        Self::edge_22nm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tsv_power_matches_paper_anchor() {
        // 1 uW per bit at 400 MHz (Gong et al., as cited by the paper).
        let tech = TechParams::default();
        let p = tech.tsv_power_per_bit_w(400e6);
        assert!((p - 1e-6).abs() < 1e-12, "got {p}");
    }

    #[test]
    fn leakage_scale_is_one_at_reference() {
        let tech = TechParams::default();
        assert!((tech.leakage_scale(45.0) - 1.0).abs() < 1e-12);
        assert!(tech.leakage_scale(85.0) > 2.0, "40 K rise should >2x leakage");
        assert!(tech.leakage_scale(25.0) < 1.0);
    }

    #[test]
    fn mac_power_scales_linearly_with_frequency() {
        let tech = TechParams::default();
        let p400 = tech.mac_dynamic_w(400e6);
        let p500 = tech.mac_dynamic_w(500e6);
        assert!((p500 / p400 - 1.25).abs() < 1e-12);
    }

    #[test]
    fn array_power_scale_sanity() {
        // A fully-utilized 200x200 array at 400 MHz should draw single-digit
        // watts — the scale that makes a 15 W MCM budget meaningful.
        let tech = TechParams::default();
        let p = tech.mac_dynamic_w(400e6) * 200.0 * 200.0;
        assert!((1.0..8.0).contains(&p), "got {p} W");
    }
}
