//! Benchmarks of the steady-state thermal solver — the paper reports ~6 s
//! (2D) and ~16 s (3D) per HotSpot steady-state run; this measures our
//! finite-volume CG equivalent across grid resolutions and stack depths.
//!
//! Run with `cargo bench --bench bench_thermal [-- --bench-filter <substr>]`.

use tesa_thermal::{Rect, StackBuilder, ThermalModel};
use tesa_util::bench::BenchRunner;

fn model_2d(n: usize) -> ThermalModel {
    let chips: Vec<(Rect, f64)> = (0..4)
        .map(|i| {
            let x = 1.0e-3 + f64::from(i % 2) * 3.4e-3;
            let y = 1.0e-3 + f64::from(i / 2) * 3.4e-3;
            (Rect::new(x, y, 2.4e-3, 2.4e-3), 120.0)
        })
        .collect();
    StackBuilder::new(8e-3, 8e-3, n, n)
        .layer("interposer", 100e-6, 120.0)
        .layer_with_patches("device", 150e-6, 0.9, chips)
        .layer("tim", 65e-6, 1.2)
        .layer("lid", 300e-6, 200.0)
        .convection(0.4, 45.0)
        .build()
}

fn model_3d(n: usize) -> ThermalModel {
    let chips: Vec<(Rect, f64)> = (0..6)
        .map(|i| {
            let x = 0.8e-3 + f64::from(i % 3) * 2.5e-3;
            let y = 1.2e-3 + f64::from(i / 3) * 3.0e-3;
            (Rect::new(x, y, 1.8e-3, 1.8e-3), 120.0)
        })
        .collect();
    StackBuilder::new(8e-3, 8e-3, n, n)
        .layer("interposer", 100e-6, 120.0)
        .layer_with_patches("sram_tier", 150e-6, 0.9, chips.clone())
        .layer("bond", 20e-6, 1.2)
        .layer_with_patches("array_tier", 150e-6, 0.9, chips)
        .layer("tim", 65e-6, 1.2)
        .layer("lid", 300e-6, 200.0)
        .convection(0.4, 45.0)
        .build()
}

fn main() {
    let mut runner = BenchRunner::from_env_args();

    for n in [32usize, 64] {
        let m2 = model_2d(n);
        let mut p2 = m2.zero_power();
        p2.add_uniform_rect(1, Rect::new(1.0e-3, 1.0e-3, 2.4e-3, 2.4e-3), 2.0);
        p2.add_uniform_rect(1, Rect::new(4.4e-3, 4.4e-3, 2.4e-3, 2.4e-3), 2.0);
        runner.bench(&format!("thermal/solve/2d_4layer/{n}"), || m2.solve(&p2));

        let m3 = model_3d(n);
        let mut p3 = m3.zero_power();
        p3.add_uniform_rect(3, Rect::new(0.8e-3, 1.2e-3, 1.8e-3, 1.8e-3), 1.5);
        p3.add_uniform_rect(1, Rect::new(0.8e-3, 1.2e-3, 1.8e-3, 1.8e-3), 0.5);
        runner.bench(&format!("thermal/solve/3d_6layer/{n}"), || m3.solve(&p3));
    }

    // Thread-count variants at the production solve size: `threadsK`
    // pins the model to K pool lanes (`set_parallel_lanes`) regardless
    // of `TESA_THREADS`, so one artifact carries its own serial baseline
    // and scaling curve. ci.sh's speedup gate compares `threads1`
    // against the default-lanes benchmark above on multi-core runners.
    for k in [1usize, 2, 4] {
        let mut m2 = model_2d(64);
        m2.set_parallel_lanes(k);
        let mut p2 = m2.zero_power();
        p2.add_uniform_rect(1, Rect::new(1.0e-3, 1.0e-3, 2.4e-3, 2.4e-3), 2.0);
        p2.add_uniform_rect(1, Rect::new(4.4e-3, 4.4e-3, 2.4e-3, 2.4e-3), 2.0);
        runner.bench(&format!("thermal/solve/2d_4layer/64/threads{k}"), || m2.solve(&p2));

        let mut m3 = model_3d(64);
        m3.set_parallel_lanes(k);
        let mut p3 = m3.zero_power();
        p3.add_uniform_rect(3, Rect::new(0.8e-3, 1.2e-3, 1.8e-3, 1.8e-3), 1.5);
        p3.add_uniform_rect(1, Rect::new(0.8e-3, 1.2e-3, 1.8e-3, 1.8e-3), 0.5);
        runner.bench(&format!("thermal/solve/3d_6layer/64/threads{k}"), || m3.solve(&p3));
    }

    // Multi-RHS batching at the production solve size: eight independent
    // power maps on one model, solved either one at a time (`batch1_x8`,
    // the serial baseline), as two lockstep batches of four (`batch4_x2`),
    // or as one lockstep batch of eight (`batch8`). All three rows do the
    // same total work — eight steady-state solves — so their medians are
    // directly comparable, and ci.sh gates batch8 against batch1_x8 on
    // multi-core runners. Per-map wattage varies so the systems converge
    // at different iterations, exercising lane retirement.
    {
        let m = model_2d(64);
        let maps: Vec<_> = (0..8)
            .map(|i| {
                let mut p = m.zero_power();
                let w = 1.6 + 0.1 * f64::from(i);
                p.add_uniform_rect(1, Rect::new(1.0e-3, 1.0e-3, 2.4e-3, 2.4e-3), w);
                p.add_uniform_rect(1, Rect::new(4.4e-3, 4.4e-3, 2.4e-3, 2.4e-3), 2.0);
                p
            })
            .collect();
        let refs: Vec<&_> = maps.iter().collect();
        runner.bench("thermal/batch/2d_4layer/64/batch1_x8", || {
            maps.iter().map(|p| m.solve(p)).collect::<Vec<_>>()
        });
        runner.bench("thermal/batch/2d_4layer/64/batch4_x2", || {
            (m.solve_batch(&refs[..4]), m.solve_batch(&refs[4..]))
        });
        runner.bench("thermal/batch/2d_4layer/64/batch8", || m.solve_batch(&refs));
    }

    let m = model_2d(64);
    let mut p = m.zero_power();
    p.add_uniform_rect(1, Rect::new(1.0e-3, 1.0e-3, 2.4e-3, 2.4e-3), 2.0);
    let cold = m.solve(&p).into_inner();
    // Perturb the power slightly — the leakage-iteration access pattern.
    let mut p2 = m.zero_power();
    p2.add_uniform_rect(1, Rect::new(1.0e-3, 1.0e-3, 2.4e-3, 2.4e-3), 2.1);
    runner.bench("thermal/warm_start/perturbed_solve", || m.solve_with_guess(&p2, &cold));

    runner.report();
}
