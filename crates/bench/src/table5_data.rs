//! Loading of `out/table5.csv` (written by the `table5` binary) so the
//! downstream comparison binaries reuse TESA's chosen designs instead of
//! re-running sixteen optimizations.

use tesa::design::{ChipletConfig, Integration, McmDesign};

/// One TESA result row from `out/table5.csv`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TesaChoice {
    /// Integration technology.
    pub integration: Integration,
    /// Frequency, MHz.
    pub freq_mhz: u32,
    /// Latency constraint, fps.
    pub fps: f64,
    /// Thermal budget, °C.
    pub temp_c: f64,
    /// The chosen design (reconstructable and re-evaluable).
    pub design: McmDesign,
}

/// Parses the CSV written by the `table5` binary. Rows where TESA found no
/// feasible design are skipped. Returns `None` when the file is missing —
/// callers then fall back to running the optimizer themselves.
pub fn load_table5_choices() -> Option<Vec<TesaChoice>> {
    let path = crate::out_dir().join("table5.csv");
    let text = std::fs::read_to_string(path).ok()?;
    let mut rows = Vec::new();
    for line in text.lines().skip(1) {
        let f: Vec<&str> = line.split(',').collect();
        if f.len() < 8 || f[4].is_empty() {
            continue;
        }
        let integration = match f[0] {
            "2D" => Integration::TwoD,
            "3D" => Integration::ThreeD,
            _ => continue,
        };
        let (Ok(freq), Ok(fps), Ok(temp), Ok(array), Ok(total_kib), Ok(ics)) = (
            f[1].parse::<u32>(),
            f[2].parse::<f64>(),
            f[3].parse::<f64>(),
            f[4].parse::<u32>(),
            f[5].parse::<u64>(),
            f[7].parse::<u32>(),
        ) else {
            continue;
        };
        rows.push(TesaChoice {
            integration,
            freq_mhz: freq,
            fps,
            temp_c: temp,
            design: McmDesign {
                chiplet: ChipletConfig {
                    array_dim: array,
                    sram_kib_per_bank: total_kib / 3,
                    integration,
                },
                ics_um: ics,
                freq_mhz: freq,
            },
        });
    }
    Some(rows)
}
