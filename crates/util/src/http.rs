//! A minimal HTTP/1.1 codec and blocking client for the `tesa serve`
//! daemon.
//!
//! The workspace is hermetic — no `hyper`, no `reqwest` — so the daemon
//! and its CLI client speak a deliberately small subset of HTTP/1.1 built
//! directly on [`std::net`]:
//!
//! * one request per connection (`Connection: close` on every response);
//! * bodies are delimited by `Content-Length` only (no chunked encoding);
//! * header names are matched case-insensitively, values are trimmed;
//! * request bodies are capped ([`MAX_BODY_BYTES`]) so a misbehaving
//!   client cannot balloon daemon memory.
//!
//! That subset is enough for `curl`, for [`get`]/[`post`] below, and for
//! the `tesa client` subcommand. Parsing is transport-agnostic: both
//! [`Request::read_from`] and [`Response::read_from`] accept any
//! [`BufRead`], so the codec is unit-testable with [`std::io::Cursor`]
//! and never needs a socket in tests.
//!
//! # Examples
//!
//! ```
//! use tesa_util::http::{Request, Response};
//! use std::io::Cursor;
//!
//! // Parse a request from raw bytes (as the daemon does per connection).
//! let raw = b"POST /evaluate HTTP/1.1\r\ncontent-length: 2\r\n\r\n{}";
//! let req = Request::read_from(&mut Cursor::new(&raw[..])).unwrap();
//! assert_eq!((req.method.as_str(), req.target.as_str()), ("POST", "/evaluate"));
//! assert_eq!(req.body_str().unwrap(), "{}");
//!
//! // Emit a response (as the daemon does) and parse it back (as the
//! // client does).
//! let mut wire = Vec::new();
//! Response::text(200, "ok\n").write_to(&mut wire).unwrap();
//! let resp = Response::read_from(&mut Cursor::new(wire)).unwrap();
//! assert_eq!(resp.status, 200);
//! assert_eq!(resp.body_str().unwrap(), "ok\n");
//! ```

use crate::json::Json;
use std::fmt;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Hard cap on accepted message bodies (1 MiB). A `tesa serve` request
/// describes one design point or one annealing campaign — a few hundred
/// bytes — so anything near the cap is garbage or abuse.
pub const MAX_BODY_BYTES: usize = 1 << 20;

/// Errors from parsing or transporting an HTTP message.
#[derive(Debug)]
pub enum HttpError {
    /// The underlying transport failed (connect, read, or write).
    Io(std::io::Error),
    /// The peer sent bytes that are not the HTTP subset we speak.
    Malformed(String),
    /// The declared `Content-Length` exceeds [`MAX_BODY_BYTES`].
    TooLarge(usize),
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HttpError::Io(e) => write!(f, "http i/o error: {e}"),
            HttpError::Malformed(why) => write!(f, "malformed http message: {why}"),
            HttpError::TooLarge(n) => {
                write!(f, "http body of {n} bytes exceeds the {MAX_BODY_BYTES}-byte cap")
            }
        }
    }
}

impl std::error::Error for HttpError {}

impl From<std::io::Error> for HttpError {
    fn from(e: std::io::Error) -> Self {
        HttpError::Io(e)
    }
}

/// A parsed HTTP request (the daemon's view of one connection).
#[derive(Debug, Clone)]
pub struct Request {
    /// Request method, uppercase as sent (`GET`, `POST`, …).
    pub method: String,
    /// Request target as sent, e.g. `/evaluate`.
    pub target: String,
    /// Header `(name, value)` pairs in wire order, values trimmed.
    pub headers: Vec<(String, String)>,
    /// Raw body bytes (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
}

impl Request {
    /// Reads and parses one request from `reader`.
    ///
    /// Expects a request line, headers up to an empty line, and a body of
    /// exactly `Content-Length` bytes (absent header ⇒ empty body, as is
    /// conventional for `GET`). Declared lengths above [`MAX_BODY_BYTES`]
    /// are rejected before any body byte is read.
    pub fn read_from<R: BufRead>(reader: &mut R) -> Result<Request, HttpError> {
        let line = read_crlf_line(reader)?;
        let mut parts = line.split(' ');
        let (method, target, version) =
            match (parts.next(), parts.next(), parts.next(), parts.next()) {
                (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => {
                    (m.to_owned(), t.to_owned(), v)
                }
                _ => {
                    return Err(HttpError::Malformed(format!("bad request line {line:?}")));
                }
            };
        if !version.starts_with("HTTP/1.") {
            return Err(HttpError::Malformed(format!("unsupported version {version:?}")));
        }
        let headers = read_headers(reader)?;
        let body = read_body(reader, &headers)?;
        Ok(Request { method, target, headers, body })
    }

    /// First value of header `name`, matched case-insensitively.
    pub fn header(&self, name: &str) -> Option<&str> {
        header_lookup(&self.headers, name)
    }

    /// The body as UTF-8, or a [`HttpError::Malformed`] if it is not.
    pub fn body_str(&self) -> Result<&str, HttpError> {
        std::str::from_utf8(&self.body)
            .map_err(|e| HttpError::Malformed(format!("body is not utf-8: {e}")))
    }
}

/// An HTTP response — built by the daemon, parsed by the client.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code (`200`, `429`, …).
    pub status: u16,
    /// Header `(name, value)` pairs. `Content-Length` and `Connection`
    /// are appended automatically by [`Response::write_to`].
    pub headers: Vec<(String, String)>,
    /// Raw body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A `text/plain` response with the given body.
    pub fn text<S: Into<String>>(status: u16, body: S) -> Response {
        Response {
            status,
            headers: vec![("Content-Type".to_owned(), "text/plain".to_owned())],
            body: body.into().into_bytes(),
        }
    }

    /// An `application/json` response whose body is `value` serialized
    /// with a trailing newline — the same framing the one-shot CLI uses
    /// on stdout, so byte-for-byte comparisons against `tesa … --format
    /// json` hold.
    pub fn json(status: u16, value: &Json) -> Response {
        Response {
            status,
            headers: vec![("Content-Type".to_owned(), "application/json".to_owned())],
            body: format!("{value}\n").into_bytes(),
        }
    }

    /// A `text/plain` response carrying a pre-rendered body that must be
    /// transmitted verbatim (e.g. a stored campaign report).
    pub fn raw(status: u16, body: Vec<u8>, content_type: &str) -> Response {
        Response {
            status,
            headers: vec![("Content-Type".to_owned(), content_type.to_owned())],
            body,
        }
    }

    /// Returns `self` with one extra header appended (builder-style).
    ///
    /// ```
    /// use tesa_util::http::Response;
    /// let r = Response::text(429, "queue full\n").with_header("Retry-After", "1");
    /// assert_eq!(r.header("retry-after"), Some("1"));
    /// ```
    pub fn with_header<N: Into<String>, V: Into<String>>(mut self, name: N, value: V) -> Response {
        self.headers.push((name.into(), value.into()));
        self
    }

    /// First value of header `name`, matched case-insensitively.
    pub fn header(&self, name: &str) -> Option<&str> {
        header_lookup(&self.headers, name)
    }

    /// The body as UTF-8, or a [`HttpError::Malformed`] if it is not.
    pub fn body_str(&self) -> Result<&str, HttpError> {
        std::str::from_utf8(&self.body)
            .map_err(|e| HttpError::Malformed(format!("body is not utf-8: {e}")))
    }

    /// Serializes the response to `writer`: status line, the stored
    /// headers, then `Content-Length` and `Connection: close`, a blank
    /// line, and the body.
    pub fn write_to<W: Write>(&self, writer: &mut W) -> Result<(), HttpError> {
        write!(writer, "HTTP/1.1 {} {}\r\n", self.status, reason(self.status))?;
        for (name, value) in &self.headers {
            write!(writer, "{name}: {value}\r\n")?;
        }
        write!(writer, "Content-Length: {}\r\n", self.body.len())?;
        write!(writer, "Connection: close\r\n\r\n")?;
        writer.write_all(&self.body)?;
        writer.flush()?;
        Ok(())
    }

    /// Reads and parses one response from `reader` (the client side of
    /// [`Response::write_to`]). Accepts only `Content-Length`-delimited
    /// bodies, like the request parser.
    pub fn read_from<R: BufRead>(reader: &mut R) -> Result<Response, HttpError> {
        let line = read_crlf_line(reader)?;
        let mut parts = line.splitn(3, ' ');
        let (version, status) = match (parts.next(), parts.next()) {
            (Some(v), Some(s)) => (v, s),
            _ => return Err(HttpError::Malformed(format!("bad status line {line:?}"))),
        };
        if !version.starts_with("HTTP/1.") {
            return Err(HttpError::Malformed(format!("unsupported version {version:?}")));
        }
        let status: u16 = status
            .parse()
            .map_err(|_| HttpError::Malformed(format!("bad status code in {line:?}")))?;
        let headers = read_headers(reader)?;
        let body = read_body(reader, &headers)?;
        Ok(Response { status, headers, body })
    }
}

/// The canonical reason phrase for the status codes the daemon emits
/// (anything unrecognized maps to `"Unknown"`).
///
/// ```
/// assert_eq!(tesa_util::http::reason(429), "Too Many Requests");
/// ```
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        _ => "Unknown",
    }
}

/// Blocking `GET` against `addr` (a `host:port` string), returning the
/// parsed response. Connect/read/write each carry `timeout`.
pub fn get(addr: &str, path: &str, timeout: Duration) -> Result<Response, HttpError> {
    roundtrip(addr, "GET", path, None, timeout)
}

/// Blocking `POST` of `body` (sent as `application/json`) against `addr`,
/// returning the parsed response. Connect/read/write each carry
/// `timeout`.
pub fn post(addr: &str, path: &str, body: &str, timeout: Duration) -> Result<Response, HttpError> {
    roundtrip(addr, "POST", path, Some(body), timeout)
}

fn roundtrip(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
    timeout: Duration,
) -> Result<Response, HttpError> {
    let addrs: Vec<_> = std::net::ToSocketAddrs::to_socket_addrs(addr)
        .map_err(|e| HttpError::Malformed(format!("bad address {addr:?}: {e}")))?
        .collect();
    let sock =
        addrs.first().ok_or_else(|| HttpError::Malformed(format!("bad address {addr:?}")))?;
    let mut stream = TcpStream::connect_timeout(sock, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    let body = body.unwrap_or("");
    write!(stream, "{method} {path} HTTP/1.1\r\nHost: {addr}\r\n")?;
    if !body.is_empty() {
        write!(stream, "Content-Type: application/json\r\n")?;
    }
    write!(stream, "Content-Length: {}\r\nConnection: close\r\n\r\n", body.len())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()?;
    let mut reader = BufReader::new(stream);
    Response::read_from(&mut reader)
}

/// Reads one CRLF- (or bare-LF-) terminated line, without the terminator.
fn read_crlf_line<R: BufRead>(reader: &mut R) -> Result<String, HttpError> {
    let mut line = String::new();
    let n = reader.read_line(&mut line)?;
    if n == 0 {
        return Err(HttpError::Malformed("unexpected end of stream".to_owned()));
    }
    while line.ends_with('\n') || line.ends_with('\r') {
        line.pop();
    }
    Ok(line)
}

fn read_headers<R: BufRead>(reader: &mut R) -> Result<Vec<(String, String)>, HttpError> {
    let mut headers = Vec::new();
    loop {
        let line = read_crlf_line(reader)?;
        if line.is_empty() {
            return Ok(headers);
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::Malformed(format!("bad header line {line:?}")))?;
        headers.push((name.trim().to_owned(), value.trim().to_owned()));
    }
}

fn read_body<R: BufRead>(
    reader: &mut R,
    headers: &[(String, String)],
) -> Result<Vec<u8>, HttpError> {
    let declared = match header_lookup(headers, "content-length") {
        None => return Ok(Vec::new()),
        Some(v) => v
            .parse::<usize>()
            .map_err(|_| HttpError::Malformed(format!("bad content-length {v:?}")))?,
    };
    if declared > MAX_BODY_BYTES {
        return Err(HttpError::TooLarge(declared));
    }
    let mut body = vec![0u8; declared];
    reader.read_exact(&mut body)?;
    Ok(body)
}

fn header_lookup<'a>(headers: &'a [(String, String)], name: &str) -> Option<&'a str> {
    headers
        .iter()
        .find(|(n, _)| n.eq_ignore_ascii_case(name))
        .map(|(_, v)| v.as_str())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn parses_post_with_body() {
        let raw = b"POST /screen HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nabcd";
        let req = Request::read_from(&mut Cursor::new(&raw[..])).unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.target, "/screen");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.body, b"abcd");
    }

    #[test]
    fn get_without_length_has_empty_body() {
        let raw = b"GET /healthz HTTP/1.1\r\n\r\n";
        let req = Request::read_from(&mut Cursor::new(&raw[..])).unwrap();
        assert_eq!(req.method, "GET");
        assert!(req.body.is_empty());
    }

    #[test]
    fn rejects_garbage_request_line() {
        let raw = b"NOT-HTTP\r\n\r\n";
        assert!(matches!(
            Request::read_from(&mut Cursor::new(&raw[..])),
            Err(HttpError::Malformed(_))
        ));
    }

    #[test]
    fn rejects_oversized_declared_body() {
        let raw = format!("POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n", MAX_BODY_BYTES + 1);
        assert!(matches!(
            Request::read_from(&mut Cursor::new(raw.into_bytes())),
            Err(HttpError::TooLarge(_))
        ));
    }

    #[test]
    fn rejects_truncated_body() {
        let raw = b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort";
        assert!(matches!(Request::read_from(&mut Cursor::new(&raw[..])), Err(HttpError::Io(_))));
    }

    #[test]
    fn response_roundtrips_with_json_framing() {
        let value = Json::obj([("ok", Json::Bool(true))]);
        let mut wire = Vec::new();
        Response::json(200, &value).write_to(&mut wire).unwrap();
        let parsed = Response::read_from(&mut Cursor::new(wire)).unwrap();
        assert_eq!(parsed.status, 200);
        assert_eq!(parsed.header("content-type"), Some("application/json"));
        assert_eq!(parsed.body_str().unwrap(), "{\"ok\":true}\n");
    }

    #[test]
    fn retry_after_header_survives_roundtrip() {
        let mut wire = Vec::new();
        Response::text(429, "busy\n")
            .with_header("Retry-After", "1")
            .write_to(&mut wire)
            .unwrap();
        let parsed = Response::read_from(&mut Cursor::new(wire)).unwrap();
        assert_eq!(parsed.status, 429);
        assert_eq!(parsed.header("Retry-After"), Some("1"));
    }

    #[test]
    fn reason_phrases_cover_daemon_statuses() {
        for status in [200u16, 400, 404, 405, 409, 429, 500] {
            assert_ne!(reason(status), "Unknown", "status {status}");
        }
        assert_eq!(reason(302), "Unknown");
    }
}
