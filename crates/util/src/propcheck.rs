//! A minimal property-based testing harness.
//!
//! `propcheck` replaces the external `proptest` crate for this workspace's
//! needs: draw N random inputs from a generator, run a property on each,
//! and — on failure — shrink the counterexample by repeatedly halving
//! toward the generator's lower bound before reporting it together with
//! the seed that reproduces the run.
//!
//! Properties return `Result<(), String>`; the [`prop_assert!`],
//! [`prop_assert_eq!`] and [`prop_assume!`] macros keep ported test bodies
//! close to their `proptest` originals.
//!
//! # Examples
//!
//! ```
//! use tesa_util::propcheck::{check, ranged, Config};
//! use tesa_util::prop_assert;
//!
//! check(Config::with_cases(64), (ranged(0u32..100), ranged(0u32..100)), |(a, b)| {
//!     prop_assert!(a + b >= a, "unsigned addition is monotone");
//!     Ok(())
//! });
//! ```
//!
//! To replay a failure, set `TESA_PROPCHECK_SEED` to the seed printed in
//! the panic message.
//!
//! [`prop_assert!`]: crate::prop_assert
//! [`prop_assert_eq!`]: crate::prop_assert_eq
//! [`prop_assume!`]: crate::prop_assume

use crate::rng::Rng;
use std::fmt::Debug;
use std::ops::Range;

/// Default seed of a property run (overridable via `TESA_PROPCHECK_SEED`).
pub const DEFAULT_SEED: u64 = 0x7E5A_C4EC;

/// Harness configuration: number of cases and base seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Config {
    /// Number of random cases to run.
    pub cases: u32,
    /// Base RNG seed; case `i` uses `seed + i`.
    pub seed: u64,
    /// Upper bound on successful shrink steps (a safety net).
    pub max_shrink_steps: u32,
}

impl Default for Config {
    fn default() -> Self {
        let seed = std::env::var("TESA_PROPCHECK_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(DEFAULT_SEED);
        Self { cases: 256, seed, max_shrink_steps: 1024 }
    }
}

impl Config {
    /// The default configuration with a custom case count.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases, ..Self::default() }
    }
}

/// A value generator with optional shrinking.
pub trait Gen {
    /// The type of generated values.
    type Value: Debug + Clone;

    /// Draws one random value.
    fn generate(&self, rng: &mut Rng) -> Self::Value;

    /// Candidate simplifications of `value`, simplest first. The harness
    /// keeps the first candidate that still fails the property and repeats
    /// until no candidate fails. The default generator has nothing to try.
    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        let _ = value;
        Vec::new()
    }
}

/// Runs `prop` against `cases` random values from `gen`.
///
/// # Panics
///
/// Panics on the first failing case, after shrinking, with a message that
/// includes the seed, the case index, and the minimal failing input.
pub fn check<G, F>(config: Config, gen: G, prop: F)
where
    G: Gen,
    F: Fn(G::Value) -> Result<(), String>,
{
    for case in 0..config.cases {
        let mut rng = Rng::seed_from_u64(config.seed.wrapping_add(u64::from(case)));
        let value = gen.generate(&mut rng);
        if let Err(first_err) = prop(value.clone()) {
            let (minimal, err, steps) = shrink_failure(&config, &gen, &prop, value, first_err);
            panic!(
                "property failed (seed {} case {case}, {steps} shrink steps; \
                 set TESA_PROPCHECK_SEED={} to replay)\n  minimal failing input: {:?}\n  error: {err}",
                config.seed, config.seed, minimal
            );
        }
    }
}

fn shrink_failure<G, F>(
    config: &Config,
    gen: &G,
    prop: &F,
    mut value: G::Value,
    mut err: String,
) -> (G::Value, String, u32)
where
    G: Gen,
    F: Fn(G::Value) -> Result<(), String>,
{
    let mut steps = 0;
    while steps < config.max_shrink_steps {
        let mut improved = false;
        for candidate in gen.shrink(&value) {
            if let Err(e) = prop(candidate.clone()) {
                value = candidate;
                err = e;
                improved = true;
                steps += 1;
                break;
            }
        }
        if !improved {
            break;
        }
    }
    (value, err, steps)
}

// ---------------------------------------------------------------- ranges

/// A generator drawing uniformly from a half-open range, shrinking toward
/// the range's lower bound by halving.
#[derive(Debug, Clone)]
pub struct Ranged<T> {
    range: Range<T>,
}

/// Uniform values from `range`, e.g. `ranged(1u32..300)` or
/// `ranged(0.5f64..4.0)`.
pub fn ranged<T>(range: Range<T>) -> Ranged<T> {
    Ranged { range }
}

macro_rules! impl_gen_int {
    ($($t:ty),*) => {$(
        impl Gen for Ranged<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut Rng) -> $t {
                rng.gen_range(self.range.clone())
            }

            fn shrink(&self, value: &$t) -> Vec<$t> {
                let lo = self.range.start;
                let mut out = Vec::new();
                if *value > lo {
                    // Simplest first: the lower bound, then the halfway
                    // point, then one step down.
                    out.push(lo);
                    let half = lo + (*value - lo) / 2;
                    if half != lo && half != *value {
                        out.push(half);
                    }
                    if *value - 1 != lo && (*value - 1) != half {
                        out.push(*value - 1);
                    }
                }
                out
            }
        }
    )*};
}

impl_gen_int!(u8, u16, u32, u64, usize, i32, i64);

impl Gen for Ranged<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut Rng) -> f64 {
        rng.gen_range(self.range.clone())
    }

    fn shrink(&self, value: &f64) -> Vec<f64> {
        let lo = self.range.start;
        let mut out = Vec::new();
        if *value > lo {
            out.push(lo);
            let half = lo + (*value - lo) / 2.0;
            if half > lo && half < *value {
                out.push(half);
            }
        }
        out
    }
}

// ---------------------------------------------------------------- vectors

/// A generator of vectors with a length drawn from a range; see [`vec_of`].
#[derive(Debug, Clone)]
pub struct VecOf<G> {
    element: G,
    len: Range<usize>,
}

/// Vectors of `len` elements from `element`, e.g.
/// `vec_of(ranged(1u64..100), 1..12)`. Shrinks by halving the length, then
/// by shrinking individual elements.
pub fn vec_of<G: Gen>(element: G, len: Range<usize>) -> VecOf<G> {
    VecOf { element, len }
}

impl<G: Gen> Gen for VecOf<G> {
    type Value = Vec<G::Value>;

    fn generate(&self, rng: &mut Rng) -> Self::Value {
        let n = rng.gen_range(self.len.clone());
        (0..n).map(|_| self.element.generate(rng)).collect()
    }

    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        let mut out = Vec::new();
        let min = self.len.start;
        // Halve the length (keeping a prefix) while respecting the minimum.
        if value.len() > min {
            let half = min.max(value.len() / 2);
            if half < value.len() {
                out.push(value[..half].to_vec());
            }
            out.push(value[..value.len() - 1].to_vec());
        }
        // Shrink each element once, holding the rest fixed.
        for (i, v) in value.iter().enumerate() {
            if let Some(simpler) = self.element.shrink(v).into_iter().next() {
                let mut copy = value.clone();
                copy[i] = simpler;
                out.push(copy);
            }
        }
        out
    }
}

// ---------------------------------------------------------------- tuples

macro_rules! impl_gen_tuple {
    ($(($($g:ident $idx:tt),+);)+) => {$(
        impl<$($g: Gen),+> Gen for ($($g,)+) {
            type Value = ($($g::Value,)+);

            fn generate(&self, rng: &mut Rng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }

            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for candidate in self.$idx.shrink(&value.$idx) {
                        let mut copy = value.clone();
                        copy.$idx = candidate;
                        out.push(copy);
                    }
                )+
                out
            }
        }
    )+};
}

impl_gen_tuple! {
    (A 0);
    (A 0, B 1);
    (A 0, B 1, C 2);
    (A 0, B 1, C 2, D 3);
    (A 0, B 1, C 2, D 3, E 4);
    (A 0, B 1, C 2, D 3, E 4, F 5);
}

// ---------------------------------------------------------------- macros

/// Asserts a condition inside a property, failing the case with a message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a property, failing the case with both values.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (lhs, rhs) = (&$a, &$b);
        if lhs != rhs {
            return Err(format!("assertion failed: {:?} != {:?}", lhs, rhs));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$a, &$b);
        if lhs != rhs {
            return Err(format!(
                "assertion failed: {:?} != {:?}: {}",
                lhs, rhs, format!($($fmt)+)
            ));
        }
    }};
}

/// Skips the current case (treated as a pass) when a precondition fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Ok(());
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let counter = std::cell::Cell::new(0u32);
        check(Config::with_cases(50), ranged(0u32..100), |_| {
            counter.set(counter.get() + 1);
            Ok(())
        });
        assert_eq!(counter.get(), 50);
    }

    #[test]
    fn failing_property_panics_with_seed() {
        let result = std::panic::catch_unwind(|| {
            check(Config { cases: 64, seed: 1, max_shrink_steps: 64 }, ranged(0u32..100), |x| {
                if x >= 10 {
                    Err(format!("{x} too big"))
                } else {
                    Ok(())
                }
            });
        });
        let msg = *result.expect_err("must fail").downcast::<String>().expect("string panic");
        assert!(msg.contains("seed 1"), "seed missing from: {msg}");
        assert!(msg.contains("TESA_PROPCHECK_SEED"), "replay hint missing: {msg}");
    }

    #[test]
    fn shrinking_reaches_the_minimal_counterexample() {
        // Property fails for x >= 10; halving from any failing draw must
        // land exactly on the boundary value 10.
        let result = std::panic::catch_unwind(|| {
            check(Config { cases: 32, seed: 3, max_shrink_steps: 256 }, ranged(0u32..1000), |x| {
                if x >= 10 {
                    Err("boundary".into())
                } else {
                    Ok(())
                }
            });
        });
        let msg = *result.expect_err("must fail").downcast::<String>().expect("string panic");
        assert!(
            msg.contains("minimal failing input: 10"),
            "shrinker did not reach 10: {msg}"
        );
    }

    #[test]
    fn tuple_components_shrink_independently() {
        let result = std::panic::catch_unwind(|| {
            check(
                Config { cases: 16, seed: 5, max_shrink_steps: 256 },
                (ranged(0u64..500), ranged(0u64..500)),
                |(a, b)| {
                    if a >= 7 && b >= 3 {
                        Err("both big".into())
                    } else {
                        Ok(())
                    }
                },
            );
        });
        let msg = *result.expect_err("must fail").downcast::<String>().expect("string panic");
        assert!(msg.contains("(7, 3)"), "expected minimal (7, 3), got: {msg}");
    }

    #[test]
    fn vec_generator_respects_length_bounds() {
        check(Config::with_cases(64), vec_of(ranged(1u64..50), 2..6), |v| {
            prop_assert!((2..6).contains(&v.len()), "len {}", v.len());
            prop_assert!(v.iter().all(|&x| (1..50).contains(&x)));
            Ok(())
        });
    }

    #[test]
    fn vec_shrinks_toward_short_vectors() {
        let result = std::panic::catch_unwind(|| {
            check(
                Config { cases: 16, seed: 9, max_shrink_steps: 512 },
                vec_of(ranged(0u32..100), 1..10),
                |v| {
                    if v.len() >= 3 {
                        Err("long".into())
                    } else {
                        Ok(())
                    }
                },
            );
        });
        let msg = *result.expect_err("must fail").downcast::<String>().expect("string panic");
        // Minimal vector violating len < 3 has exactly 3 elements, all 0.
        assert!(msg.contains("[0, 0, 0]"), "expected [0, 0, 0], got: {msg}");
    }

    #[test]
    fn assume_skips_without_failing() {
        check(Config::with_cases(64), (ranged(0u32..10), ranged(0u32..10)), |(a, b)| {
            prop_assume!(a < b);
            prop_assert!(b > a);
            Ok(())
        });
    }
}
