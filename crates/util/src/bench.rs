//! A lightweight benchmark harness (criterion replacement).
//!
//! Each bench target is a plain binary (`harness = false`) that registers
//! closures with a [`BenchRunner`]. Every benchmark runs a warmup phase
//! followed by N timed iterations and reports the median and p95 iteration
//! time in an aligned table.
//!
//! Command-line flags (unknown flags, like cargo's own `--bench`, are
//! ignored):
//!
//! * `--bench-filter SUBSTRING` — run only benchmarks whose name contains
//!   the substring (a bare positional token works too);
//! * `--warmup N` — warmup iterations per benchmark (default 3);
//! * `--iters N` — timed iterations per benchmark (default 15).
//!
//! # Examples
//!
//! ```
//! use tesa_util::bench::BenchRunner;
//!
//! let mut runner = BenchRunner::new();
//! runner.bench("square", || 42u64 * 42);
//! let report = runner.finish();
//! assert!(report.contains("square"));
//! ```

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Collects and times benchmarks, then renders a report table.
#[derive(Debug)]
pub struct BenchRunner {
    filter: Option<String>,
    warmup: u32,
    iters: u32,
    results: Vec<BenchResult>,
    skipped: usize,
}

#[derive(Debug)]
struct BenchResult {
    name: String,
    median: Duration,
    p95: Duration,
    iters: u32,
}

impl Default for BenchRunner {
    fn default() -> Self {
        Self::new()
    }
}

impl BenchRunner {
    /// A runner with default settings and no filter.
    pub fn new() -> Self {
        Self { filter: None, warmup: 3, iters: 15, results: Vec::new(), skipped: 0 }
    }

    /// A runner configured from the process command line (see the module
    /// docs for the recognized flags).
    pub fn from_env_args() -> Self {
        Self::from_args(std::env::args().skip(1))
    }

    /// A runner configured from an explicit token stream.
    pub fn from_args<I: IntoIterator<Item = String>>(tokens: I) -> Self {
        let mut runner = Self::new();
        let mut iter = tokens.into_iter();
        while let Some(tok) = iter.next() {
            match tok.as_str() {
                "--bench-filter" => runner.filter = iter.next(),
                "--warmup" => {
                    if let Some(n) = iter.next().and_then(|v| v.parse().ok()) {
                        runner.warmup = n;
                    }
                }
                "--iters" => {
                    if let Some(n) = iter.next().and_then(|v| v.parse().ok()) {
                        runner.iters = n;
                    }
                }
                other if !other.starts_with('-') => runner.filter = Some(other.to_owned()),
                _ => {} // cargo bench passes e.g. `--bench`; ignore.
            }
        }
        runner
    }

    /// Restricts the run to benchmarks whose name contains `filter`.
    pub fn set_filter<S: Into<String>>(&mut self, filter: S) {
        self.filter = Some(filter.into());
    }

    /// Times `f` (warmup + timed iterations) under `name`, unless filtered
    /// out. The closure's return value is passed through [`black_box`] so
    /// the measured work is not optimized away.
    pub fn bench<R, F: FnMut() -> R>(&mut self, name: &str, mut f: F) {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                self.skipped += 1;
                return;
            }
        }
        for _ in 0..self.warmup {
            black_box(f());
        }
        let n = self.iters.max(1);
        let mut samples: Vec<Duration> = (0..n)
            .map(|_| {
                let start = Instant::now();
                black_box(f());
                start.elapsed()
            })
            .collect();
        samples.sort_unstable();
        let median = samples[samples.len() / 2];
        let p95 = samples[((samples.len() as f64 * 0.95) as usize).min(samples.len() - 1)];
        let result = BenchResult { name: name.to_owned(), median, p95, iters: n };
        eprintln!(
            "bench {:<44} median {:>12}  p95 {:>12}  ({} iters)",
            result.name,
            format_duration(result.median),
            format_duration(result.p95),
            result.iters
        );
        self.results.push(result);
    }

    /// Renders the report table and returns it (callers usually print it).
    pub fn finish(self) -> String {
        let mut out = String::new();
        let name_w =
            self.results.iter().map(|r| r.name.len()).max().unwrap_or(9).max("benchmark".len());
        out.push_str(&format!(
            "{:<name_w$}  {:>12}  {:>12}  {:>6}\n",
            "benchmark", "median", "p95", "iters"
        ));
        out.push_str(&format!("{}\n", "-".repeat(name_w + 38)));
        for r in &self.results {
            out.push_str(&format!(
                "{:<name_w$}  {:>12}  {:>12}  {:>6}\n",
                r.name,
                format_duration(r.median),
                format_duration(r.p95),
                r.iters
            ));
        }
        if self.skipped > 0 {
            out.push_str(&format!("({} benchmark(s) filtered out)\n", self.skipped));
        }
        out
    }

    /// Runs `finish` and prints the report to stdout — the usual last line
    /// of a bench target's `main`.
    pub fn report(self) {
        println!("\n{}", self.finish());
    }
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 10_000 {
        format!("{ns} ns")
    } else if ns < 10_000_000 {
        format!("{:.2} us", ns as f64 / 1e3)
    } else if ns < 10_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_and_reports_a_benchmark() {
        let mut r = BenchRunner::new();
        r.warmup = 1;
        r.iters = 5;
        let mut acc = 0u64;
        r.bench("acc", || {
            acc = acc.wrapping_add(1);
            acc
        });
        let report = r.finish();
        assert!(report.contains("acc"));
        assert!(report.contains("median"));
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut r = BenchRunner::from_args(["--bench-filter".to_owned(), "thermal".to_owned()]);
        r.iters = 1;
        r.warmup = 0;
        let mut ran = false;
        r.bench("scalesim/unet", || ran = true);
        assert!(!ran, "filtered benchmark must not run");
        r.bench("thermal/solve", || ran = true);
        assert!(ran);
        assert!(r.finish().contains("filtered out"));
    }

    #[test]
    fn positional_token_acts_as_filter() {
        let r = BenchRunner::from_args(["eval".to_owned()]);
        assert_eq!(r.filter.as_deref(), Some("eval"));
    }

    #[test]
    fn cargo_bench_flag_is_ignored() {
        let r = BenchRunner::from_args(["--bench".to_owned()]);
        assert_eq!(r.filter, None);
    }

    #[test]
    fn args_configure_iterations() {
        let r = BenchRunner::from_args(
            ["--warmup", "7", "--iters", "21"].map(str::to_owned),
        );
        assert_eq!((r.warmup, r.iters), (7, 21));
    }

    #[test]
    fn duration_formatting_scales() {
        assert_eq!(format_duration(Duration::from_nanos(500)), "500 ns");
        assert!(format_duration(Duration::from_micros(500)).ends_with("us"));
        assert!(format_duration(Duration::from_millis(500)).ends_with("ms"));
        assert!(format_duration(Duration::from_secs(50)).ends_with(" s"));
    }
}
