//! Kill-and-resume matrix for checkpointed DSE campaigns.
//!
//! Each scenario runs `tesa optimize` with checkpointing in a subprocess,
//! crashes it partway — either deterministically (the `ckpt.abort`
//! faultpoint calls `abort()` right after a checkpoint commits) or by a
//! timed hard kill — then resumes from the on-disk checkpoint and asserts
//! the final report is **byte-identical** to an uninterrupted run of the
//! same campaign.

use std::path::{Path, PathBuf};
use std::process::{Command, Output, Stdio};

/// A fast campaign: 2 starts x (5 + 4) temperature steps, 2 moves each,
/// coarse thermal grid. Small enough that the whole matrix runs in test
/// time, long enough that aborts land genuinely mid-campaign.
const CAMPAIGN: &[&str] = &[
    "optimize",
    "--deltas",
    "0.7,0.6",
    "--t-init",
    "4",
    "--t-final",
    "0.8",
    "--moves-per-temp",
    "2",
    "--init-attempts",
    "20",
    "--grid-cells",
    "32",
    "--fps",
    "15",
    "--temp-c",
    "85",
    "--format",
    "json",
];

/// Locates the `tesa` CLI binary next to the test executable
/// (`target/<profile>/tesa`), building it if this test runs on its own.
/// `TESA_BIN` overrides the discovery for packaged environments.
fn tesa_bin() -> PathBuf {
    if let Ok(p) = std::env::var("TESA_BIN") {
        return PathBuf::from(p);
    }
    let exe = std::env::current_exe().expect("test executable path");
    let profile_dir = exe
        .parent()
        .and_then(Path::parent)
        .expect("target profile directory");
    let bin = profile_dir.join(format!("tesa{}", std::env::consts::EXE_SUFFIX));
    if bin.exists() {
        return bin;
    }
    let mut args = vec!["build", "-p", "tesa-cli", "--offline"];
    if profile_dir.file_name().is_some_and(|n| n == "release") {
        args.push("--release");
    }
    let status = Command::new(std::env::var("CARGO").unwrap_or_else(|_| "cargo".into()))
        .args(&args)
        .status()
        .expect("cargo build -p tesa-cli");
    assert!(status.success(), "building the tesa CLI failed");
    assert!(bin.exists(), "built CLI not found at {}", bin.display());
    bin
}

/// Runs one `tesa optimize` invocation. `TESA_FAULTPOINTS` is always
/// scrubbed from the child environment so only the explicit
/// `--faultpoints` flag injects faults.
fn run_tesa(bin: &Path, seed: u64, extra: &[&str]) -> Output {
    Command::new(bin)
        .args(CAMPAIGN)
        .args(["--seed", &seed.to_string()])
        .args(extra)
        .env_remove("TESA_FAULTPOINTS")
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .output()
        .expect("spawning tesa")
}

fn reference_report(bin: &Path, seed: u64) -> Vec<u8> {
    let out = run_tesa(bin, seed, &[]);
    assert!(
        out.status.success(),
        "reference run (seed {seed}) failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(!out.stdout.is_empty(), "reference run produced no report");
    out.stdout
}

fn ckpt_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("tesa-crash-{tag}-{}.ckpt", std::process::id()))
}

fn resume_and_check(bin: &Path, seed: u64, path: &Path, reference: &[u8], scenario: &str) {
    let resumed = run_tesa(bin, seed, &["--resume", &path.display().to_string()]);
    assert!(
        resumed.status.success(),
        "[{scenario}] resume failed: {}",
        String::from_utf8_lossy(&resumed.stderr)
    );
    assert_eq!(
        resumed.stdout,
        reference,
        "[{scenario}] resumed report differs from the uninterrupted run:\n--- resumed\n{}\n--- reference\n{}",
        String::from_utf8_lossy(&resumed.stdout),
        String::from_utf8_lossy(reference)
    );
    let _ = std::fs::remove_file(path);
}

/// Scenarios 1-6: deterministic crash points. `ckpt.abort=nth:K` makes the
/// optimizer abort the process immediately after the K-th successful
/// checkpoint commit, so each K freezes the campaign at a different
/// schedule position across three seeds.
#[test]
fn forced_aborts_resume_to_identical_reports() {
    let bin = tesa_bin();
    for seed in [11u64, 12, 13] {
        let reference = reference_report(&bin, seed);
        for abort_at in [1u64, 3] {
            let scenario = format!("seed {seed}, abort after commit {abort_at}");
            let path = ckpt_path(&format!("abort-{seed}-{abort_at}"));
            let _ = std::fs::remove_file(&path);
            let crashed = run_tesa(
                &bin,
                seed,
                &[
                    "--checkpoint",
                    &path.display().to_string(),
                    "--faultpoints",
                    &format!("ckpt.abort=nth:{abort_at}"),
                ],
            );
            assert!(
                !crashed.status.success(),
                "[{scenario}] the injected abort must crash the run"
            );
            assert!(
                path.exists(),
                "[{scenario}] ckpt.abort fires only after a successful commit"
            );
            resume_and_check(&bin, seed, &path, &reference, &scenario);
        }
    }
}

/// Scenarios 7-8: hard kills at arbitrary wall-clock points. Whatever the
/// checkpoint captured (possibly nothing — a missing file resumes as a
/// fresh run), the resumed campaign must reproduce the reference bytes.
#[test]
fn timed_kills_resume_to_identical_reports() {
    let bin = tesa_bin();
    for (seed, delay_ms) in [(21u64, 150u64), (22, 600)] {
        let scenario = format!("seed {seed}, SIGKILL after {delay_ms} ms");
        let reference = reference_report(&bin, seed);
        let path = ckpt_path(&format!("kill-{seed}"));
        let _ = std::fs::remove_file(&path);
        let mut child = Command::new(&bin)
            .args(CAMPAIGN)
            .args(["--seed", &seed.to_string()])
            .args(["--checkpoint", &path.display().to_string()])
            .env_remove("TESA_FAULTPOINTS")
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawning tesa");
        std::thread::sleep(std::time::Duration::from_millis(delay_ms));
        let _ = child.kill();
        let _ = child.wait();
        resume_and_check(&bin, seed, &path, &reference, &scenario);
    }
}

/// Scenario 9: resuming an already-finished campaign replays nothing and
/// reprints the identical report from the checkpoint's Done states.
#[test]
fn resume_after_completion_reprints_the_report() {
    let bin = tesa_bin();
    let seed = 31u64;
    let path = ckpt_path("complete");
    let _ = std::fs::remove_file(&path);
    let full = run_tesa(&bin, seed, &["--checkpoint", &path.display().to_string()]);
    assert!(full.status.success(), "{}", String::from_utf8_lossy(&full.stderr));
    resume_and_check(&bin, seed, &path, &full.stdout, "resume after completion");
}

/// Scenario 10: checkpointing itself is invisible — a checkpointed run
/// reports the same bytes as a plain run of the same campaign.
#[test]
fn checkpointing_does_not_change_the_report() {
    let bin = tesa_bin();
    let seed = 32u64;
    let reference = reference_report(&bin, seed);
    let path = ckpt_path("plain");
    let _ = std::fs::remove_file(&path);
    let ckpt = run_tesa(&bin, seed, &["--checkpoint", &path.display().to_string()]);
    assert!(ckpt.status.success(), "{}", String::from_utf8_lossy(&ckpt.stderr));
    assert_eq!(
        ckpt.stdout, reference,
        "a checkpointed run must report identical bytes"
    );
    let _ = std::fs::remove_file(&path);
}
