//! Always-on, process-wide metrics: counters, gauges, and log-linear
//! histograms, replacing `prometheus`/`metrics` for runtime telemetry.
//!
//! Unlike [`trace`](crate::trace) — which records *individual* events to a
//! sink and is off by default — this registry keeps *aggregates* in plain
//! relaxed atomics and is always enabled: recording a sample costs one
//! relaxed RMW on the owning cache line (histograms touch two more for the
//! running sum and max), cheap enough to leave compiled into production
//! hot paths. There is no sampling, no locking on the record path, and no
//! allocation after registration.
//!
//! Metrics are declared as `static` items with `const` constructors and
//! lazily register themselves in a process-wide registry the first time
//! they are touched (or eagerly via [`Counter::register`] and friends);
//! [`render_prometheus`]
//! walks the registry and emits Prometheus text exposition format 0.0.4.
//!
//! Histograms use a log-linear bucket layout (exact unit-width buckets
//! below 16, then 16 sub-buckets per power of two): every bucket above the
//! linear region has a relative width of 1/16, so quantiles reconstructed
//! from bucket counts are within one bucket width (≤ 6.25% relative
//! error) of the exact sample quantiles.
//!
//! ```
//! use tesa_util::metrics::{Counter, Histogram};
//!
//! static REQUESTS: Counter = Counter::new("doc_requests_total", "Requests served.");
//! static LATENCY: Histogram =
//!     Histogram::new("doc_latency_us", "Request latency in microseconds.");
//!
//! REQUESTS.inc();
//! LATENCY.record(1200);
//! let text = tesa_util::metrics::render_prometheus();
//! assert!(text.contains("doc_requests_total 1"));
//! assert!(text.contains("doc_latency_us_sum 1200"));
//! ```

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Sub-bucket bits per power of two: 16 sub-buckets per octave.
const SUB_BITS: u32 = 4;
/// Sub-buckets per octave, and the width of the exact linear region.
const SUB: usize = 1 << SUB_BITS;
/// Highest value bit covered before samples clamp into the last bucket.
/// `msb` ∈ `[SUB_BITS, MAX_MSB]` maps to an octave; 40 covers values up
/// to ~2.2e12 (≈ 25 days when recording microseconds).
const MAX_MSB: u32 = 40;
/// Total bucket count: the linear region plus one `SUB`-wide group per
/// covered octave.
const NBUCKETS: usize = SUB * (MAX_MSB - SUB_BITS + 2) as usize;

/// Bucket index for a sample value (log-linear layout).
fn bucket_index(v: u64) -> usize {
    if v < SUB as u64 {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros();
    if msb > MAX_MSB {
        return NBUCKETS - 1;
    }
    let octave = msb - SUB_BITS;
    let sub = ((v >> (msb - SUB_BITS)) as usize) & (SUB - 1);
    SUB * (octave as usize + 1) + sub
}

/// Inclusive `[lo, hi]` value range covered by bucket `idx`.
fn bucket_bounds(idx: usize) -> (u64, u64) {
    if idx < SUB {
        return (idx as u64, idx as u64);
    }
    let octave = (idx / SUB - 1) as u32;
    let sub = (idx % SUB) as u64;
    let lo = (SUB as u64 + sub) << octave;
    (lo, lo + (1u64 << octave) - 1)
}

/// A registered metric, any kind. The registry stores these; exposition
/// and JSON views iterate them.
enum MetricRef {
    Counter(&'static Counter),
    Gauge(&'static Gauge),
    Histogram(&'static Histogram),
}

impl MetricRef {
    fn name(&self) -> &'static str {
        match self {
            MetricRef::Counter(c) => c.name,
            MetricRef::Gauge(g) => g.name,
            MetricRef::Histogram(h) => h.name,
        }
    }

    fn labels(&self) -> &'static [(&'static str, &'static str)] {
        match self {
            MetricRef::Counter(c) => c.labels,
            MetricRef::Gauge(g) => g.labels,
            MetricRef::Histogram(h) => h.labels,
        }
    }

    fn help(&self) -> &'static str {
        match self {
            MetricRef::Counter(c) => c.help,
            MetricRef::Gauge(g) => g.help,
            MetricRef::Histogram(h) => h.help,
        }
    }

    fn type_name(&self) -> &'static str {
        match self {
            MetricRef::Counter(_) => "counter",
            MetricRef::Gauge(_) => "gauge",
            MetricRef::Histogram(_) => "histogram",
        }
    }
}

/// Process-wide list of registered metrics. Locked only at registration
/// (once per metric per process) and at render time — never on the record
/// path.
static REGISTRY: Mutex<Vec<MetricRef>> = Mutex::new(Vec::new());

fn push_registered(m: MetricRef, flag: &AtomicBool) {
    let mut reg = REGISTRY.lock().unwrap_or_else(|e| e.into_inner());
    // `swap` under the lock de-duplicates racing first touches.
    if !flag.swap(true, Ordering::Relaxed) {
        reg.push(m);
    }
}

/// A monotonically increasing counter (`u64`, relaxed atomics).
pub struct Counter {
    name: &'static str,
    help: &'static str,
    labels: &'static [(&'static str, &'static str)],
    value: AtomicU64,
    registered: AtomicBool,
}

impl Counter {
    /// A new unregistered counter; usable as a `static` initializer.
    pub const fn new(name: &'static str, help: &'static str) -> Counter {
        Counter::with_labels(name, help, &[])
    }

    /// Like [`Counter::new`] with fixed `key="value"` exposition labels.
    /// Several metrics may share a name with distinct labels; they render
    /// as one Prometheus family.
    pub const fn with_labels(
        name: &'static str,
        help: &'static str,
        labels: &'static [(&'static str, &'static str)],
    ) -> Counter {
        Counter {
            name,
            help,
            labels,
            value: AtomicU64::new(0),
            registered: AtomicBool::new(false),
        }
    }

    /// Registers the counter so it appears in exposition even at zero.
    pub fn register(&'static self) {
        if !self.registered.load(Ordering::Relaxed) {
            push_registered(MetricRef::Counter(self), &self.registered);
        }
    }

    /// Adds 1.
    pub fn inc(&'static self) {
        self.add(1);
    }

    /// Adds `n`. One relaxed `fetch_add` (plus a one-time registration on
    /// the very first touch).
    pub fn add(&'static self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
        self.register();
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A gauge holding one `f64` (stored as bits in an `AtomicU64`).
pub struct Gauge {
    name: &'static str,
    help: &'static str,
    labels: &'static [(&'static str, &'static str)],
    bits: AtomicU64,
    registered: AtomicBool,
}

impl Gauge {
    /// A new unregistered gauge starting at `0.0`.
    pub const fn new(name: &'static str, help: &'static str) -> Gauge {
        Gauge::with_labels(name, help, &[])
    }

    /// Like [`Gauge::new`] with fixed exposition labels.
    pub const fn with_labels(
        name: &'static str,
        help: &'static str,
        labels: &'static [(&'static str, &'static str)],
    ) -> Gauge {
        Gauge {
            name,
            help,
            labels,
            bits: AtomicU64::new(0),
            registered: AtomicBool::new(false),
        }
    }

    /// Registers the gauge so it appears in exposition before first set.
    pub fn register(&'static self) {
        if !self.registered.load(Ordering::Relaxed) {
            push_registered(MetricRef::Gauge(self), &self.registered);
        }
    }

    /// Stores `v`. One relaxed store (plus one-time registration).
    pub fn set(&'static self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
        self.register();
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// A log-linear bucketed histogram of `u64` samples.
///
/// Bucket counts, the running sum, and the running max are relaxed
/// atomics; [`Histogram::record`] is three relaxed RMW ops and never
/// locks or allocates. Quantiles are reconstructed from bucket bounds at
/// read time ([`HistogramSnapshot::quantile`]) and are exact to within
/// one bucket width.
pub struct Histogram {
    name: &'static str,
    help: &'static str,
    labels: &'static [(&'static str, &'static str)],
    buckets: [AtomicU64; NBUCKETS],
    sum: AtomicU64,
    max: AtomicU64,
    registered: AtomicBool,
}

impl Histogram {
    /// A new unregistered histogram; usable as a `static` initializer.
    pub const fn new(name: &'static str, help: &'static str) -> Histogram {
        Histogram::with_labels(name, help, &[])
    }

    /// Like [`Histogram::new`] with fixed exposition labels.
    pub const fn with_labels(
        name: &'static str,
        help: &'static str,
        labels: &'static [(&'static str, &'static str)],
    ) -> Histogram {
        Histogram {
            name,
            help,
            labels,
            buckets: [const { AtomicU64::new(0) }; NBUCKETS],
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            registered: AtomicBool::new(false),
        }
    }

    /// Registers the histogram so it appears in exposition while empty.
    pub fn register(&'static self) {
        if !self.registered.load(Ordering::Relaxed) {
            push_registered(MetricRef::Histogram(self), &self.registered);
        }
    }

    /// Records one sample: a bucket increment, a sum add, and a max
    /// update — three relaxed atomic RMW ops.
    pub fn record(&'static self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
        self.register();
    }

    /// Records the elapsed microseconds since `start`.
    pub fn record_elapsed_us(&'static self, start: Instant) {
        self.record(start.elapsed().as_micros() as u64);
    }

    /// A point-in-time copy of the bucket counts and aggregates.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count = buckets.iter().sum();
        HistogramSnapshot {
            buckets,
            count,
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }

    /// Total number of recorded samples.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }
}

/// A point-in-time view of a [`Histogram`]: per-bucket counts plus the
/// exact sample count, sum, and max.
pub struct HistogramSnapshot {
    buckets: Vec<u64>,
    /// Number of recorded samples.
    pub count: u64,
    /// Exact sum of all recorded samples.
    pub sum: u64,
    /// Largest recorded sample (0 when empty).
    pub max: u64,
}

impl HistogramSnapshot {
    /// The `q`-quantile (`0.0 ..= 1.0`) reconstructed from bucket counts:
    /// the upper bound of the bucket holding the sample of that rank,
    /// clamped to the observed max. Within one bucket width of the exact
    /// sample quantile; `None` when the histogram is empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (idx, &n) in self.buckets.iter().enumerate() {
            cum += n;
            if cum >= rank {
                let (_, hi) = bucket_bounds(idx);
                return Some(hi.min(self.max));
            }
        }
        Some(self.max)
    }

    /// Non-empty buckets as `(lo, hi, count)` ranges, in value order.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(idx, &n)| {
                let (lo, hi) = bucket_bounds(idx);
                (lo, hi, n)
            })
            .collect()
    }
}

/// Formats an `f64` for exposition: integral values without a fraction,
/// everything else via the shortest round-trip repr.
fn fmt_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_owned()
    } else if v.is_infinite() {
        if v > 0.0 { "+Inf" } else { "-Inf" }.to_owned()
    } else {
        format!("{v}")
    }
}

fn fmt_labels(labels: &[(&str, &str)], extra: Option<(&str, &str)>) -> String {
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{v}\""))
        .collect();
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{v}\""));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

/// Renders every registered metric in Prometheus text exposition format
/// 0.0.4: `# HELP` / `# TYPE` headers per family, then one line per
/// series. Histograms emit cumulative `_bucket{le="…"}` lines at their
/// non-empty bucket boundaries plus `+Inf`, `_sum`, and `_count`.
/// Families are sorted by name (then label set) so output is stable.
pub fn render_prometheus() -> String {
    let reg = REGISTRY.lock().unwrap_or_else(|e| e.into_inner());
    let mut order: Vec<&MetricRef> = reg.iter().collect();
    order.sort_by_key(|m| (m.name(), m.labels()));
    let mut out = String::new();
    let mut last_name = "";
    for m in order {
        if m.name() != last_name {
            last_name = m.name();
            out.push_str(&format!("# HELP {} {}\n", m.name(), m.help()));
            out.push_str(&format!("# TYPE {} {}\n", m.name(), m.type_name()));
        }
        match m {
            MetricRef::Counter(c) => {
                out.push_str(&format!(
                    "{}{} {}\n",
                    c.name,
                    fmt_labels(c.labels, None),
                    c.get()
                ));
            }
            MetricRef::Gauge(g) => {
                out.push_str(&format!(
                    "{}{} {}\n",
                    g.name,
                    fmt_labels(g.labels, None),
                    fmt_f64(g.get())
                ));
            }
            MetricRef::Histogram(h) => {
                let snap = h.snapshot();
                let mut cum = 0u64;
                for (_, hi, n) in snap.nonzero_buckets() {
                    cum += n;
                    out.push_str(&format!(
                        "{}_bucket{} {}\n",
                        h.name,
                        fmt_labels(h.labels, Some(("le", &hi.to_string()))),
                        cum
                    ));
                }
                out.push_str(&format!(
                    "{}_bucket{} {}\n",
                    h.name,
                    fmt_labels(h.labels, Some(("le", "+Inf"))),
                    snap.count
                ));
                out.push_str(&format!(
                    "{}_sum{} {}\n",
                    h.name,
                    fmt_labels(h.labels, None),
                    snap.sum
                ));
                out.push_str(&format!(
                    "{}_count{} {}\n",
                    h.name,
                    fmt_labels(h.labels, None),
                    snap.count
                ));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_roundtrip() {
        for v in [0u64, 1, 7, 15, 16, 17, 31, 32, 63, 64, 1000, 123_456, u64::MAX] {
            let idx = bucket_index(v);
            let (lo, hi) = bucket_bounds(idx);
            if v < (1u64 << (MAX_MSB + 1)) {
                assert!(lo <= v && v <= hi, "v={v} idx={idx} lo={lo} hi={hi}");
            } else {
                assert_eq!(idx, NBUCKETS - 1);
            }
        }
    }

    #[test]
    fn bucket_layout_is_contiguous() {
        let mut expect = 0u64;
        for idx in 0..NBUCKETS {
            let (lo, hi) = bucket_bounds(idx);
            assert_eq!(lo, expect, "bucket {idx} lower bound");
            assert!(hi >= lo);
            expect = hi + 1;
        }
    }

    #[test]
    fn relative_bucket_width_bounded() {
        for idx in SUB..NBUCKETS {
            let (lo, hi) = bucket_bounds(idx);
            let width = hi - lo + 1;
            assert!(
                (width as f64) / (lo as f64) <= 1.0 / SUB as f64 + 1e-12,
                "bucket {idx}: width {width} lo {lo}"
            );
        }
    }

    #[test]
    fn counter_and_gauge_basics() {
        static C: Counter = Counter::new("test_metrics_counter_total", "test");
        static G: Gauge = Gauge::new("test_metrics_gauge", "test");
        let before = C.get();
        C.inc();
        C.add(4);
        assert_eq!(C.get(), before + 5);
        G.set(2.5);
        assert_eq!(G.get(), 2.5);
        let text = render_prometheus();
        assert!(text.contains("# TYPE test_metrics_counter_total counter"));
        assert!(text.contains("test_metrics_gauge 2.5"));
    }

    #[test]
    fn histogram_quantiles_and_exposition() {
        static H: Histogram = Histogram::new("test_metrics_hist_us", "test");
        for v in 1..=100u64 {
            H.record(v);
        }
        let snap = H.snapshot();
        assert_eq!(snap.count, 100);
        assert_eq!(snap.sum, 5050);
        assert_eq!(snap.max, 100);
        // p50 of 1..=100 is 50; bucket [48,51] holds it → hi=51.
        let p50 = snap.quantile(0.5).unwrap();
        assert!((48..=56).contains(&p50), "p50={p50}");
        assert_eq!(snap.quantile(1.0).unwrap(), 100);
        let text = render_prometheus();
        assert!(text.contains("test_metrics_hist_us_sum 5050"));
        assert!(text.contains("test_metrics_hist_us_count 100"));
        assert!(text.contains("le=\"+Inf\"} 100"));
        // Cumulative bucket lines must be non-decreasing and end at count.
        let mut last = 0u64;
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("test_metrics_hist_us_bucket{le=\"") {
                let n: u64 = rest.split("} ").nth(1).unwrap().parse().unwrap();
                assert!(n >= last);
                last = n;
            }
        }
        assert_eq!(last, 100);
    }

    #[test]
    fn labeled_series_share_one_family_header() {
        static A: Counter = Counter::with_labels(
            "test_metrics_labeled_total",
            "test",
            &[("endpoint", "a")],
        );
        static B: Counter = Counter::with_labels(
            "test_metrics_labeled_total",
            "test",
            &[("endpoint", "b")],
        );
        A.inc();
        B.add(2);
        let text = render_prometheus();
        let headers = text
            .lines()
            .filter(|l| *l == "# TYPE test_metrics_labeled_total counter")
            .count();
        assert_eq!(headers, 1);
        assert!(text.contains("test_metrics_labeled_total{endpoint=\"a\"} 1"));
        assert!(text.contains("test_metrics_labeled_total{endpoint=\"b\"} 2"));
    }
}
