//! A hand-written minimal JSON emitter and parser.
//!
//! Replaces the `serde` machinery for the workspace's machine-readable
//! formats: emission for the CLI's `--json` reports and the trace sink,
//! parsing ([`parse`]) for reading those artifacts back — `tesa trace
//! summarize` aggregating a JSONL trace, and the bench guard diffing
//! `BENCH_*.json` files.
//!
//! Non-finite floats have no JSON representation and are emitted as
//! `null`; 64-bit integers are kept exact via dedicated variants. The
//! parser mirrors that convention: integer literals that fit become
//! [`Json::U64`]/[`Json::I64`], everything else [`Json::F64`].
//!
//! # Examples
//!
//! ```
//! use tesa_util::Json;
//!
//! let j = Json::obj([
//!     ("design", Json::str("128x128")),
//!     ("peak_c", Json::f64(71.25)),
//!     ("feasible", Json::Bool(true)),
//! ]);
//! assert_eq!(
//!     j.to_string(),
//!     r#"{"design":"128x128","peak_c":71.25,"feasible":true}"#
//! );
//! ```

/// A JSON value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A 64-bit unsigned integer, emitted exactly.
    U64(u64),
    /// A 64-bit signed integer, emitted exactly.
    I64(i64),
    /// A double (non-finite values emit as `null`).
    F64(f64),
    /// A string (escaped on emission).
    Str(String),
    /// An ordered array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// A string value.
    pub fn str<S: Into<String>>(s: S) -> Self {
        Json::Str(s.into())
    }

    /// A float value.
    pub fn f64(x: f64) -> Self {
        Json::F64(x)
    }

    /// An unsigned integer value.
    pub fn u64<T: Into<u64>>(x: T) -> Self {
        Json::U64(x.into())
    }

    /// An object from `(key, value)` pairs, preserving order.
    pub fn obj<K: Into<String>, I: IntoIterator<Item = (K, Json)>>(pairs: I) -> Self {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// An array from values.
    pub fn arr<I: IntoIterator<Item = Json>>(items: I) -> Self {
        Json::Arr(items.into_iter().collect())
    }

    /// Looks up `key` in an object (first occurrence); `None` for other
    /// variants or a missing key.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, widening any of the three numeric variants to
    /// `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::U64(n) => Some(*n as f64),
            Json::I64(n) => Some(*n as f64),
            Json::F64(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as an unsigned integer: `U64` directly, or `I64`/`F64`
    /// when they represent one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::U64(n) => Some(*n),
            Json::I64(n) => u64::try_from(*n).ok(),
            Json::F64(x) if x.fract() == 0.0 && *x >= 0.0 && *x <= u64::MAX as f64 => {
                Some(*x as u64)
            }
            _ => None,
        }
    }

    /// The string contents of a `Str` value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean value of a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements of an `Arr` value.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(n) => out.push_str(&n.to_string()),
            Json::I64(n) => out.push_str(&n.to_string()),
            Json::F64(x) => {
                if x.is_finite() {
                    // `{x}` prints the shortest round-trippable form.
                    out.push_str(&format!("{x}"));
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Self {
        Json::Bool(b)
    }
}

impl From<f64> for Json {
    fn from(x: f64) -> Self {
        Json::F64(x)
    }
}

impl From<u64> for Json {
    fn from(x: u64) -> Self {
        Json::U64(x)
    }
}

impl From<u32> for Json {
    fn from(x: u32) -> Self {
        Json::U64(u64::from(x))
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Self {
        Json::str(s)
    }
}

/// Parses one JSON document from `text` (surrounding whitespace allowed).
///
/// # Errors
///
/// Returns a message with a byte offset on malformed input, including
/// trailing garbage after the document.
///
/// # Examples
///
/// ```
/// use tesa_util::json;
///
/// let v = json::parse(r#"{"name":"cg","iters":12,"res":1e-9}"#).unwrap();
/// assert_eq!(v.get("iters").and_then(json::Json::as_u64), Some(12));
/// ```
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing characters at byte {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b' ' | b'\t' | b'\n' | b'\r') = self.bytes.get(self.pos) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            pairs.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Copy unescaped runs in one slice to keep the common case fast.
            while matches!(self.peek(), Some(c) if c != b'"' && c != b'\\') {
                self.pos += 1;
            }
            if self.pos > start {
                let run = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| format!("invalid UTF-8 at byte {start}"))?;
                out.push_str(run);
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    out.push(self.escape()?);
                }
                _ => return Err(format!("unterminated string at byte {}", self.pos)),
            }
        }
    }

    fn escape(&mut self) -> Result<char, String> {
        let c = self.peek().ok_or_else(|| format!("bad escape at byte {}", self.pos))?;
        self.pos += 1;
        Ok(match c {
            b'"' => '"',
            b'\\' => '\\',
            b'/' => '/',
            b'b' => '\u{8}',
            b'f' => '\u{c}',
            b'n' => '\n',
            b'r' => '\r',
            b't' => '\t',
            b'u' => {
                let hi = self.hex4()?;
                let code = if (0xD800..0xDC00).contains(&hi) {
                    // Surrogate pair: a low surrogate must follow.
                    if self.peek() == Some(b'\\') {
                        self.pos += 1;
                        self.expect(b'u')?;
                    } else {
                        return Err(format!("lone surrogate at byte {}", self.pos));
                    }
                    let lo = self.hex4()?;
                    if !(0xDC00..0xE000).contains(&lo) {
                        return Err(format!("invalid low surrogate at byte {}", self.pos));
                    }
                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                } else {
                    hi
                };
                char::from_u32(code)
                    .ok_or_else(|| format!("invalid codepoint at byte {}", self.pos))?
            }
            _ => return Err(format!("bad escape '\\{}' at byte {}", c as char, self.pos - 1)),
        })
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        let hex = self
            .bytes
            .get(self.pos..end)
            .and_then(|s| std::str::from_utf8(s).ok())
            .ok_or_else(|| format!("truncated \\u escape at byte {}", self.pos))?;
        let code = u32::from_str_radix(hex, 16)
            .map_err(|_| format!("bad \\u escape at byte {}", self.pos))?;
        self.pos = end;
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("number bytes are ASCII");
        if !is_float {
            // Keep 64-bit integers exact, matching the emitter's variants.
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Json::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Json::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Json::F64)
            .map_err(|_| format!("invalid number at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_emit_canonically() {
        assert_eq!(Json::Null.to_string(), "null");
        assert_eq!(Json::Bool(false).to_string(), "false");
        assert_eq!(Json::U64(18_446_744_073_709_551_615).to_string(), "18446744073709551615");
        assert_eq!(Json::I64(-42).to_string(), "-42");
        assert_eq!(Json::F64(1.5).to_string(), "1.5");
        assert_eq!(Json::str("hi").to_string(), "\"hi\"");
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(Json::F64(f64::INFINITY).to_string(), "null");
        assert_eq!(Json::F64(f64::NAN).to_string(), "null");
    }

    #[test]
    fn floats_round_trip_shortest_form() {
        assert_eq!(Json::F64(0.1).to_string(), "0.1");
        assert_eq!(Json::F64(71.25).to_string(), "71.25");
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(Json::str("a\"b\\c\nd").to_string(), r#""a\"b\\c\nd""#);
        assert_eq!(Json::str("\u{1}").to_string(), "\"\\u0001\"");
    }

    #[test]
    fn nested_structures_compose() {
        let j = Json::obj([
            ("xs", Json::arr([Json::U64(1), Json::U64(2)])),
            ("inner", Json::obj([("k", Json::Null)])),
        ]);
        assert_eq!(j.to_string(), r#"{"xs":[1,2],"inner":{"k":null}}"#);
    }

    #[test]
    fn object_preserves_insertion_order() {
        let j = Json::obj([("z", Json::U64(1)), ("a", Json::U64(2))]);
        assert_eq!(j.to_string(), r#"{"z":1,"a":2}"#);
    }

    #[test]
    fn parse_round_trips_emitted_documents() {
        let j = Json::obj([
            ("design", Json::str("128x128")),
            ("peak_c", Json::f64(71.25)),
            ("feasible", Json::Bool(true)),
            ("xs", Json::arr([Json::U64(1), Json::I64(-2), Json::Null])),
            ("escaped", Json::str("a\"b\\c\nd\u{1}")),
        ]);
        assert_eq!(parse(&j.to_string()), Ok(j));
    }

    #[test]
    fn parse_numbers_preserve_integer_variants() {
        assert_eq!(parse("18446744073709551615"), Ok(Json::U64(u64::MAX)));
        assert_eq!(parse("-42"), Ok(Json::I64(-42)));
        assert_eq!(parse("1.5e3"), Ok(Json::F64(1500.0)));
        assert_eq!(parse("-0.25"), Ok(Json::F64(-0.25)));
    }

    #[test]
    fn parse_handles_whitespace_and_unicode_escapes() {
        let v = parse(" { \"k\" : [ \"\\u00e9\\ud83d\\ude00\" , true ] } ").unwrap();
        let arr = v.get("k").and_then(Json::as_array).unwrap();
        assert_eq!(arr[0].as_str(), Some("é😀"));
        assert_eq!(arr[1].as_bool(), Some(true));
    }

    #[test]
    fn parse_rejects_malformed_input() {
        for bad in ["", "{", "[1,", "\"open", "{\"k\":}", "nul", "1 2", "{\"a\":1,}"] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn accessors_navigate_parsed_trees() {
        let v = parse(r#"{"stats":{"hits":10,"ratio":0.5},"names":["a","b"]}"#).unwrap();
        let stats = v.get("stats").unwrap();
        assert_eq!(stats.get("hits").and_then(Json::as_u64), Some(10));
        assert_eq!(stats.get("hits").and_then(Json::as_f64), Some(10.0));
        assert_eq!(stats.get("ratio").and_then(Json::as_f64), Some(0.5));
        assert_eq!(v.get("names").and_then(Json::as_array).map(<[Json]>::len), Some(2));
        assert_eq!(v.get("missing"), None);
        assert_eq!(Json::F64(3.0).as_u64(), Some(3));
        assert_eq!(Json::F64(3.5).as_u64(), None);
    }
}
