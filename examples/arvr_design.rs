//! Full TESA design run: size and place chiplets for the AR/VR workload.
//!
//! Runs the multi-start simulated-annealing optimizer over the paper's
//! validation design space (kept smaller than Table II so the example
//! finishes in about a minute) for a 2D MCM at 400 MHz under the paper's
//! Sec. IV-A validation constraints (15 fps / 15 W / 85 °C) — the 64..128
//! arrays of this subspace cannot reach 30 fps on the heavyweight AR/VR
//! suite — then prints the chosen MCM and its schedule.
//!
//! Run with: `cargo run --release --example arvr_design`

use tesa::anneal::{optimize, MsaConfig};
use tesa::design::{DesignSpace, Integration};
use tesa::eval::{EvalOptions, Evaluator};
use tesa::{Constraints, Objective};
use tesa_suite::workloads::arvr_suite;

fn main() {
    let workload = arvr_suite();
    let evaluator = Evaluator::new(
        workload.clone(),
        EvalOptions { lazy: true, ..EvalOptions::default() },
    );
    let space = DesignSpace::validation();
    let constraints = Constraints::edge_device(15.0, 85.0);
    let objective = Objective::balanced();

    println!(
        "optimizing over {} designs (multi-start simulated annealing) ...",
        space.len()
    );
    let outcome = optimize(
        &evaluator,
        &space,
        Integration::TwoD,
        400,
        &constraints,
        &objective,
        &MsaConfig::default(),
    );
    println!(
        "explored {} unique designs ({:.1}% of the space) in {} evaluations",
        outcome.unique_designs,
        100.0 * outcome.explored_fraction(space.len()),
        outcome.evaluations
    );

    let Some(best) = outcome.best else {
        println!("no feasible MCM exists under these constraints");
        return;
    };
    println!("\nchosen MCM: {}", best.design.chiplet);
    println!("  mesh {} at ICS {} um", best.mesh.expect("mesh"), best.design.ics_um);
    println!("  peak temperature {:.2} C", best.peak_temp_c);
    println!("  total power {:.2} W (DRAM {:.2} W)", best.total_power_w, best.dram_power_w);
    println!("  MCM cost ${:.2}", best.mcm_cost_usd);
    println!("  objective (Eq. 6) = {:.4}", best.objective(&objective));

    let schedule = best.schedule.as_ref().expect("feasible design has a schedule");
    println!("\nschedule (corner-first, non-preemptive):");
    for (chip, queue) in schedule.assignments.iter().enumerate() {
        let names: Vec<&str> =
            queue.iter().map(|d| workload.dnn(*d).name()).collect();
        println!(
            "  chiplet {chip}: {} ({} cycles)",
            if names.is_empty() { "idle".to_owned() } else { names.join(" -> ") },
            schedule.chiplet_cycles[chip]
        );
    }
}
