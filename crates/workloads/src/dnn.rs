//! A DNN as an ordered list of layers.

use crate::layer::Layer;

/// A deep neural network described layer by layer.
///
/// The description carries exactly what a SCALE-Sim-class performance model
/// consumes: per-layer GEMM dimensions on int8 data at batch size 1.
///
/// # Examples
///
/// ```
/// use tesa_workloads::zoo;
///
/// let net = zoo::mobilenet_v1();
/// assert!(net.num_layers() > 20);
/// assert!(net.total_macs() > 0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dnn {
    name: String,
    layers: Vec<Layer>,
}

impl Dnn {
    /// Creates a DNN from a name and its layers.
    ///
    /// # Panics
    ///
    /// Panics if `layers` is empty: an empty DNN has no defined latency or
    /// utilization and would poison downstream averages.
    pub fn new(name: impl Into<String>, layers: Vec<Layer>) -> Self {
        assert!(!layers.is_empty(), "a DNN must have at least one layer");
        Self { name: name.into(), layers }
    }

    /// The network's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The layers, in execution order.
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Number of layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Total multiply-accumulate operations across all layers.
    pub fn total_macs(&self) -> u64 {
        self.layers.iter().map(Layer::macs).sum()
    }

    /// Total weight bytes across all layers (int8).
    pub fn total_filter_bytes(&self) -> u64 {
        self.layers.iter().map(Layer::filter_bytes).sum()
    }

    /// The largest single-layer weight tensor in bytes.
    pub fn max_layer_filter_bytes(&self) -> u64 {
        self.layers.iter().map(Layer::filter_bytes).max().unwrap_or(0)
    }

    /// The largest single-layer input feature map in bytes.
    pub fn max_layer_ifmap_bytes(&self) -> u64 {
        self.layers.iter().map(Layer::ifmap_bytes).max().unwrap_or(0)
    }
}

impl std::fmt::Display for Dnn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} ({} layers, {:.2} GMACs)",
            self.name,
            self.layers.len(),
            self.total_macs() as f64 / 1e9
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::LayerKind;

    #[test]
    #[should_panic(expected = "at least one layer")]
    fn empty_dnn_panics() {
        let _ = Dnn::new("empty", vec![]);
    }

    #[test]
    fn totals_sum_layers() {
        let l1 = Layer::new("a", LayerKind::Fc { in_features: 10, out_features: 20 });
        let l2 = Layer::new("b", LayerKind::Fc { in_features: 20, out_features: 5 });
        let d = Dnn::new("tiny", vec![l1, l2]);
        assert_eq!(d.total_macs(), 200 + 100);
        assert_eq!(d.total_filter_bytes(), 200 + 100);
        assert_eq!(d.max_layer_filter_bytes(), 200);
    }

    #[test]
    fn display_mentions_name() {
        let l = Layer::new("a", LayerKind::Fc { in_features: 8, out_features: 8 });
        let d = Dnn::new("net", vec![l]);
        assert!(d.to_string().contains("net"));
    }
}
