//! Solved temperature fields.

/// A steady-state temperature field over the model's grid, in °C.
#[derive(Debug, Clone, PartialEq)]
pub struct ThermalField {
    pub(crate) nx: usize,
    pub(crate) ny: usize,
    pub(crate) num_layers: usize,
    /// `layers * ny * nx` cell temperatures in °C, bottom layer first.
    pub(crate) temps_c: Vec<f64>,
}

impl ThermalField {
    /// Grid width in cells.
    pub fn nx(&self) -> usize {
        self.nx
    }

    /// Grid height in cells.
    pub fn ny(&self) -> usize {
        self.ny
    }

    /// Number of stack layers.
    pub fn num_layers(&self) -> usize {
        self.num_layers
    }

    /// Peak temperature across all layers (°C) — the paper's
    /// "peak junction temperature".
    pub fn peak_c(&self) -> f64 {
        self.temps_c.iter().copied().fold(f64::NEG_INFINITY, f64::max)
    }

    /// Peak temperature within one layer (°C).
    ///
    /// # Panics
    ///
    /// Panics if the layer index is out of range.
    pub fn layer_peak_c(&self, layer_idx: usize) -> f64 {
        self.layer(layer_idx).iter().copied().fold(f64::NEG_INFINITY, f64::max)
    }

    /// Cell temperatures of one layer, row-major (`iy * nx + ix`).
    ///
    /// # Panics
    ///
    /// Panics if the layer index is out of range.
    pub fn layer(&self, layer_idx: usize) -> &[f64] {
        assert!(layer_idx < self.num_layers, "layer index out of range");
        let n = self.nx * self.ny;
        &self.temps_c[layer_idx * n..(layer_idx + 1) * n]
    }

    /// Temperature of one cell (°C).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn at(&self, layer_idx: usize, ix: usize, iy: usize) -> f64 {
        assert!(ix < self.nx && iy < self.ny, "cell index out of range");
        self.layer(layer_idx)[iy * self.nx + ix]
    }

    /// Mean temperature over a layer (°C).
    ///
    /// # Panics
    ///
    /// Panics if the layer index is out of range.
    pub fn layer_mean_c(&self, layer_idx: usize) -> f64 {
        let l = self.layer(layer_idx);
        l.iter().sum::<f64>() / l.len() as f64
    }

    /// Mean temperature over a sub-rectangle of cells in one layer (°C),
    /// with `ix0..ix1` and `iy0..iy1` half-open cell ranges. Used for
    /// per-chiplet average temperatures in leakage iteration.
    ///
    /// # Panics
    ///
    /// Panics if the ranges are empty or out of bounds.
    pub fn region_mean_c(
        &self,
        layer_idx: usize,
        ix0: usize,
        ix1: usize,
        iy0: usize,
        iy1: usize,
    ) -> f64 {
        assert!(ix0 < ix1 && ix1 <= self.nx, "bad x range");
        assert!(iy0 < iy1 && iy1 <= self.ny, "bad y range");
        let l = self.layer(layer_idx);
        let mut sum = 0.0;
        for iy in iy0..iy1 {
            for ix in ix0..ix1 {
                sum += l[iy * self.nx + ix];
            }
        }
        sum / ((ix1 - ix0) * (iy1 - iy0)) as f64
    }

    /// Renders one layer as CSV text (one row per grid row, bottom row
    /// first) — the thermal-map export used for the paper's Fig. 6.
    ///
    /// # Panics
    ///
    /// Panics if the layer index is out of range.
    pub fn to_csv(&self, layer_idx: usize) -> String {
        let l = self.layer(layer_idx);
        let mut out = String::with_capacity(self.nx * self.ny * 8);
        for iy in 0..self.ny {
            for ix in 0..self.nx {
                if ix > 0 {
                    out.push(',');
                }
                out.push_str(&format!("{:.3}", l[iy * self.nx + ix]));
            }
            out.push('\n');
        }
        out
    }

    /// Renders one layer as CSV with full round-trip precision: Rust's
    /// shortest float formatting decodes back to the exact bit pattern,
    /// so byte-comparing two such exports is equivalent to bit-comparing
    /// the underlying fields. This is the export the thread-count
    /// invariance suite diffs across `TESA_THREADS` settings; the
    /// 3-decimal [`Self::to_csv`] stays the human-facing figure export.
    ///
    /// # Panics
    ///
    /// Panics if the layer index is out of range.
    pub fn to_csv_exact(&self, layer_idx: usize) -> String {
        let l = self.layer(layer_idx);
        let mut out = String::with_capacity(self.nx * self.ny * 20);
        for iy in 0..self.ny {
            for ix in 0..self.nx {
                if ix > 0 {
                    out.push(',');
                }
                out.push_str(&format!("{}", l[iy * self.nx + ix]));
            }
            out.push('\n');
        }
        out
    }

    /// Consumes the field and returns the raw per-cell temperatures
    /// (bottom layer first, row-major within a layer).
    pub fn into_inner(self) -> Vec<f64> {
        self.temps_c
    }

    /// Borrows the raw per-cell temperatures (bottom layer first,
    /// row-major within a layer) — the warm-start view used by
    /// [`crate::ThermalModel::solve_with_guess`] without cloning.
    pub fn as_slice(&self) -> &[f64] {
        &self.temps_c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn field() -> ThermalField {
        // 2x2 grid, 2 layers, temperatures 1..8.
        ThermalField {
            nx: 2,
            ny: 2,
            num_layers: 2,
            temps_c: (1..=8).map(f64::from).collect(),
        }
    }

    #[test]
    fn peak_and_layer_access() {
        let f = field();
        assert_eq!(f.peak_c(), 8.0);
        assert_eq!(f.layer_peak_c(0), 4.0);
        assert_eq!(f.at(1, 1, 1), 8.0);
        assert_eq!(f.layer_mean_c(0), 2.5);
    }

    #[test]
    fn region_mean() {
        let f = field();
        assert_eq!(f.region_mean_c(0, 0, 2, 0, 1), 1.5);
        assert_eq!(f.region_mean_c(1, 0, 1, 0, 2), (5.0 + 7.0) / 2.0);
    }

    #[test]
    fn csv_has_one_line_per_row() {
        let f = field();
        let csv = f.to_csv(0);
        assert_eq!(csv.lines().count(), 2);
        assert!(csv.starts_with("1.000,2.000"));
    }

    #[test]
    #[should_panic(expected = "layer index")]
    fn bad_layer_panics() {
        let _ = field().layer(3);
    }
}
