//! Thread-count invariance suite: the persistent worker pool must be a
//! pure wall-clock optimization. Every user-visible artifact — exact
//! thermal fields, MSA campaign reports, and crash/resume checkpoints —
//! is produced in a subprocess under `TESA_THREADS=1`, `2`, and `8` and
//! asserted **byte-identical** across the three. The fixed-chunk
//! reduction scheme (see `DESIGN.md`) is what makes this hold; a chunk
//! sizing derived from the lane count would fail here immediately.
//!
//! Subprocesses are required because the pool is a process-wide
//! singleton: `TESA_THREADS` is read once, on first use.

use std::path::{Path, PathBuf};
use std::process::{Command, Output, Stdio};

/// The lane counts under test: serial fallback, the smallest real pool,
/// and more lanes than this runner has cores (oversubscription must not
/// change results either).
const THREADS: [&str; 3] = ["1", "2", "8"];

/// A short screened + speculative campaign. Screening and speculation
/// are the thread-sensitive code paths (speculative cache warm-ups run
/// on pool lanes and auto-disable on narrow pools), so they are ON here:
/// the report must not depend on whether speculation actually ran.
const CAMPAIGN: &[&str] = &[
    "optimize",
    "--deltas",
    "0.7,0.6",
    "--t-init",
    "4",
    "--t-final",
    "0.8",
    "--moves-per-temp",
    "2",
    "--init-attempts",
    "20",
    "--grid-cells",
    "32",
    "--fps",
    "15",
    "--temp-c",
    "85",
    "--screening",
    "true",
    "--speculation",
    "4",
    "--format",
    "json",
];

/// Locates the `tesa` CLI binary next to the test executable
/// (`target/<profile>/tesa`), building it if this test runs on its own.
/// `TESA_BIN` overrides the discovery for packaged environments.
fn tesa_bin() -> PathBuf {
    if let Ok(p) = std::env::var("TESA_BIN") {
        return PathBuf::from(p);
    }
    let exe = std::env::current_exe().expect("test executable path");
    let profile_dir = exe
        .parent()
        .and_then(Path::parent)
        .expect("target profile directory");
    let bin = profile_dir.join(format!("tesa{}", std::env::consts::EXE_SUFFIX));
    if bin.exists() {
        return bin;
    }
    let mut args = vec!["build", "-p", "tesa-cli", "--offline"];
    if profile_dir.file_name().is_some_and(|n| n == "release") {
        args.push("--release");
    }
    let status = Command::new(std::env::var("CARGO").unwrap_or_else(|_| "cargo".into()))
        .args(&args)
        .status()
        .expect("cargo build -p tesa-cli");
    assert!(status.success(), "building the tesa CLI failed");
    assert!(bin.exists(), "built CLI not found at {}", bin.display());
    bin
}

/// Runs `tesa` with an explicit `TESA_THREADS`. `TESA_FAULTPOINTS` is
/// scrubbed so only the explicit `--faultpoints` flag injects faults.
fn run_with_threads(bin: &Path, threads: &str, argv: &[&str]) -> Output {
    Command::new(bin)
        .args(argv)
        .env("TESA_THREADS", threads)
        .env_remove("TESA_FAULTPOINTS")
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .output()
        .expect("spawning tesa")
}

fn stdout_ok(out: &Output, scenario: &str) -> Vec<u8> {
    assert!(
        out.status.success(),
        "[{scenario}] run failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(!out.stdout.is_empty(), "[{scenario}] produced no output");
    out.stdout.clone()
}

fn assert_identical(reference: &[u8], got: &[u8], scenario: &str) {
    assert_eq!(
        got,
        reference,
        "[{scenario}] output differs from the TESA_THREADS={} reference:\n--- got\n{}\n--- reference\n{}",
        THREADS[0],
        String::from_utf8_lossy(got),
        String::from_utf8_lossy(reference)
    );
}

fn ckpt_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("tesa-threads-{tag}-{}.ckpt", std::process::id()))
}

/// Golden thermal fields: the full-precision (`--exact`) device-tier heat
/// map at the production grid size must be byte-identical for any lane
/// count. Shortest-form float output round-trips to the exact bit
/// pattern, so this byte-compare is a bit-compare of the solved field.
/// Covers both stacks: 2D (4 layers) and 3D (6 layers, z-line smoother).
#[test]
fn exact_thermal_fields_are_thread_invariant() {
    let bin = tesa_bin();
    let designs: [&[&str]; 2] = [
        &["thermal-map", "--array", "160", "--sram-kib", "512", "--ics-um", "1000", "--exact", "true"],
        &[
            "thermal-map",
            "--array",
            "128",
            "--sram-kib",
            "512",
            "--integration",
            "3d",
            "--exact",
            "true",
        ],
    ];
    for argv in designs {
        let reference = stdout_ok(
            &run_with_threads(&bin, THREADS[0], argv),
            &format!("{argv:?} @ {}", THREADS[0]),
        );
        for threads in &THREADS[1..] {
            let scenario = format!("{argv:?} @ {threads} threads");
            let got = stdout_ok(&run_with_threads(&bin, threads, argv), &scenario);
            assert_identical(&reference, &got, &scenario);
        }
    }
}

/// MSA determinism across lane counts: a screened, speculative campaign
/// reports identical bytes (trajectory, evaluation count, best design)
/// whether speculation ran on 8 lanes or auto-disabled on 1.
#[test]
fn optimizer_reports_are_thread_invariant() {
    let bin = tesa_bin();
    for seed in ["41", "42"] {
        let mut argv: Vec<&str> = CAMPAIGN.to_vec();
        argv.extend_from_slice(&["--seed", seed]);
        let reference = stdout_ok(
            &run_with_threads(&bin, THREADS[0], &argv),
            &format!("seed {seed} @ {}", THREADS[0]),
        );
        for threads in &THREADS[1..] {
            let scenario = format!("seed {seed} @ {threads} threads");
            let got = stdout_ok(&run_with_threads(&bin, threads, &argv), &scenario);
            assert_identical(&reference, &got, &scenario);
        }
    }
}

/// Checkpoint/resume round-trip across lane counts. Two invariants:
///
/// 1. A campaign crashed mid-run (`ckpt.abort=nth:2`) and resumed under a
///    *different* lane count reproduces the uninterrupted reference
///    report exactly. (The crashed file itself is not compared: parallel
///    starts commit whole-campaign snapshots as they reach temperature
///    boundaries, so which start owns commit #2 is wall-clock racy —
///    only the *resumed result* is promised, and it must not depend on
///    how many lanes wrote or read the checkpoint.)
/// 2. The **final** checkpoint of a completed campaign is byte-identical
///    for any `TESA_THREADS`: every slot is `Done` and each slot's
///    snapshot (RNG state, screening-gate counters, visited set) is a
///    pure function of its own serial trajectory.
#[test]
fn checkpoint_round_trip_is_thread_invariant() {
    let bin = tesa_bin();
    let seed = "43";
    let mut plain: Vec<&str> = CAMPAIGN.to_vec();
    plain.extend_from_slice(&["--seed", seed]);
    let reference =
        stdout_ok(&run_with_threads(&bin, "2", &plain), "uninterrupted reference @ 2 threads");

    for threads in THREADS {
        let path = ckpt_path(&format!("abort-{threads}"));
        let _ = std::fs::remove_file(&path);
        let path_s = path.display().to_string();
        let mut argv: Vec<&str> = plain.clone();
        argv.extend_from_slice(&[
            "--checkpoint",
            &path_s,
            "--faultpoints",
            "ckpt.abort=nth:2",
        ]);
        let crashed = run_with_threads(&bin, threads, &argv);
        assert!(
            !crashed.status.success(),
            "[crash @ {threads} threads] the injected abort must crash the run"
        );
        assert!(
            path.exists(),
            "[crash @ {threads} threads] ckpt.abort fires only after a successful commit"
        );

        // Resume under a different lane count than the one that crashed.
        let resume_threads = if threads == "1" { "8" } else { "1" };
        let mut resume_argv: Vec<&str> = plain.clone();
        resume_argv.extend_from_slice(&["--resume", &path_s]);
        let scenario = format!("crash @ {threads}, resume @ {resume_threads} threads");
        let resumed = stdout_ok(&run_with_threads(&bin, resume_threads, &resume_argv), &scenario);
        assert_identical(&reference, &resumed, &scenario);
        let _ = std::fs::remove_file(&path);
    }

    let mut final_ckpts: Vec<(String, Vec<u8>)> = Vec::new();
    for threads in THREADS {
        let path = ckpt_path(&format!("full-{threads}"));
        let _ = std::fs::remove_file(&path);
        let path_s = path.display().to_string();
        let mut argv: Vec<&str> = plain.clone();
        argv.extend_from_slice(&["--checkpoint", &path_s]);
        let scenario = format!("full checkpointed run @ {threads} threads");
        let report = stdout_ok(&run_with_threads(&bin, threads, &argv), &scenario);
        assert_identical(&reference, &report, &scenario);
        let bytes = std::fs::read(&path)
            .unwrap_or_else(|e| panic!("[{scenario}] no checkpoint: {e}"));
        final_ckpts.push((threads.to_owned(), bytes));
        let _ = std::fs::remove_file(&path);
    }
    let (ref_threads, ref_bytes) = &final_ckpts[0];
    for (threads, bytes) in &final_ckpts[1..] {
        assert_eq!(
            bytes, ref_bytes,
            "final checkpoint under TESA_THREADS={threads} differs from TESA_THREADS={ref_threads}"
        );
    }
}
