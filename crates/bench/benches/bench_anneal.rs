//! Benchmark of a full (small-space) MSA optimization — the end-to-end
//! cost of one TESA design run, and the basis for the paper's "<15 % of
//! the space explored" efficiency claim.
//!
//! Run with `cargo bench --bench bench_anneal [-- --bench-filter <substr>]`.
//!
//! The `warm_cache` / `warm_cache_traced` pair measures the observability
//! layer's overhead in one run: the first executes with tracing compiled
//! in but disabled (the production default — one atomic load per
//! instrumentation point), the second with a live session draining to a
//! null sink. The disabled-path regression guard in `ci.sh` additionally
//! diffs `warm_cache` against the previous build's `BENCH_anneal.json`
//! via the `bench_guard` binary.

use tesa::anneal::{optimize, MsaConfig};
use tesa::design::{DesignSpace, Integration};
use tesa::eval::{EvalOptions, Evaluator};
use tesa::{Constraints, Objective};
use tesa_util::bench::BenchRunner;
use tesa_workloads::arvr_suite;

fn main() {
    let mut runner = BenchRunner::from_env_args();

    let space = DesignSpace {
        array_dims: (96..=192).step_by(32).collect(),
        sram_kib_options: vec![256, 512, 1024],
        ics_um_options: vec![0, 500, 1000],
    };
    let config = MsaConfig {
        deltas: vec![0.7],
        t_init: 4.0,
        t_final: 1.0,
        moves_per_temp: 5,
        init_attempts: 30,
        seed: 3,
        screening: false,
        speculation: 0,
    };
    let constraints = Constraints::edge_device(15.0, 85.0);
    let objective = Objective::balanced();
    // One evaluator shared across iterations: measures the annealer's
    // control flow + cached evaluation path (the steady-state regime of
    // a long DSE session).
    let evaluator =
        Evaluator::new(arvr_suite(), EvalOptions { lazy: true, ..EvalOptions::default() });
    runner.bench("anneal/msa_small_space_warm_cache", || {
        optimize(&evaluator, &space, Integration::TwoD, 400, &constraints, &objective, &config)
    });

    // Same workload with an active trace session draining to a null sink:
    // the difference against `warm_cache` is the *enabled* tracing cost
    // (event construction + serialization), an upper bound on what a real
    // `--trace` run adds.
    {
        let session = tesa_util::trace::init_writer(Box::new(std::io::sink()));
        runner.bench("anneal/msa_small_space_warm_cache_traced", || {
            optimize(&evaluator, &space, Integration::TwoD, 400, &constraints, &objective, &config)
        });
        drop(session);
    }

    // Fresh evaluator per iteration: every unique design pays its real
    // evaluation (including the production-grid steady-state thermal
    // solves) — the cost profile of the *first* pass over a design space.
    let cold_space = DesignSpace {
        array_dims: (96..=160).step_by(32).collect(),
        sram_kib_options: vec![256, 512],
        ics_um_options: vec![0, 500],
    };
    let cold_config = MsaConfig { moves_per_temp: 3, ..config.clone() };
    runner.bench("anneal/msa_small_space_cold_cache", || {
        let evaluator =
            Evaluator::new(arvr_suite(), EvalOptions { lazy: true, ..EvalOptions::default() });
        optimize(
            &evaluator,
            &cold_space,
            Integration::TwoD,
            400,
            &constraints,
            &objective,
            &cold_config,
        )
    });

    // The same cold-cache workload with the two-tier accelerations on:
    // surrogate screening short-circuits clearly-infeasible candidates,
    // and speculative pre-evaluation warms the cache from a work-stealing
    // pool while the serial chain replays. The trajectory (and best
    // design) is bit-identical to `cold_cache`; only the wall time moves.
    // `ci.sh` gates the ratio of the two medians via bench_guard's
    // `--speedup` mode.
    let spec_config =
        MsaConfig { screening: true, speculation: 8, ..cold_config.clone() };
    runner.bench("anneal/msa_small_space_cold_cache_spec", || {
        let evaluator =
            Evaluator::new(arvr_suite(), EvalOptions { lazy: true, ..EvalOptions::default() });
        optimize(
            &evaluator,
            &cold_space,
            Integration::TwoD,
            400,
            &constraints,
            &objective,
            &spec_config,
        )
    });

    runner.report();
}
