//! Human-readable reporting helpers for experiment binaries: aligned text
//! tables in the shape of the paper's Tables III–V.

use crate::eval::McmEvaluation;

/// A minimal fixed-width text-table builder.
///
/// # Examples
///
/// ```
/// use tesa::report::Table;
///
/// let mut t = Table::new(vec!["design", "temp"]);
/// t.row(vec!["200x200".into(), "72.1 C".into()]);
/// let s = t.to_string();
/// assert!(s.contains("200x200"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Self { headers: headers.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends one row. Short rows are padded with empty cells.
    pub fn row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    fn widths(&self) -> Vec<usize> {
        let mut w: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (c, width) in w.iter_mut().enumerate() {
                let len = row.get(c).map_or(0, String::len);
                if len > *width {
                    *width = len;
                }
            }
        }
        w
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let w = self.widths();
        let line = |f: &mut std::fmt::Formatter<'_>, cells: &[String]| -> std::fmt::Result {
            write!(f, "|")?;
            for (c, width) in w.iter().enumerate() {
                let cell = cells.get(c).map(String::as_str).unwrap_or("");
                write!(f, " {cell:<width$} |")?;
            }
            writeln!(f)
        };
        line(f, &self.headers)?;
        writeln!(f, "|{}|", w.iter().map(|x| "-".repeat(x + 2)).collect::<Vec<_>>().join("|"))?;
        for row in &self.rows {
            line(f, row)?;
        }
        Ok(())
    }
}

/// Formats the "Grid size, ICS" cell of the paper's tables, e.g.
/// `"2x3, 800 um"`.
pub fn grid_ics_cell(eval: &McmEvaluation) -> String {
    match eval.mesh {
        Some(mesh) => format!("{mesh}, {} um", eval.design.ics_um),
        None => "does not fit".to_owned(),
    }
}

/// Formats the peak-temperature cell, including runaway.
pub fn temp_cell(eval: &McmEvaluation) -> String {
    if eval.thermal_runaway {
        "Thermal runaway".to_owned()
    } else if eval.peak_temp_c.is_finite() {
        format!("{:.2} C", eval.peak_temp_c)
    } else {
        "-".to_owned()
    }
}

/// One standard result row: architecture, grid/ICS, frequency+constraint,
/// peak temperature — the shape of Tables IV and V.
pub fn standard_row(eval: &McmEvaluation, constraint_label: &str) -> Vec<String> {
    vec![
        eval.design.chiplet.to_string(),
        grid_ics_cell(eval),
        format!("{} MHz, {constraint_label}", eval.design.freq_mhz),
        temp_cell(eval),
    ]
}

/// Summarizes feasibility: either "feasible" or the violation list.
pub fn feasibility_cell(eval: &McmEvaluation) -> String {
    if eval.is_feasible() {
        "feasible".to_owned()
    } else {
        eval.violations.iter().map(ToString::to_string).collect::<Vec<_>>().join("; ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let mut t = Table::new(vec!["a", "long-header"]);
        t.row(vec!["wide-cell-content".into(), "x".into()]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0].len(), lines[2].len(), "rows align with headers");
    }

    #[test]
    fn table_pads_short_rows() {
        let mut t = Table::new(vec!["a", "b", "c"]);
        t.row(vec!["1".into()]);
        let s = t.to_string();
        assert!(s.lines().count() == 3);
    }
}
