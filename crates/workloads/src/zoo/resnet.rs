//! ResNet-50 (object recognition), 224x224 input.

use super::{conv, fc};
use crate::{Dnn, Layer};

/// Builds ResNet-50 for 224x224x3 inputs (~4.1 GMACs, ~25.5 M weights).
///
/// The four stages use the standard bottleneck design (1x1 reduce, 3x3,
/// 1x1 expand) with projection shortcuts on the first block of each stage.
/// Batch-norm and activation layers carry no MACs and are omitted, matching
/// what SCALE-Sim-class models simulate.
pub fn resnet50() -> Dnn {
    let mut layers: Vec<Layer> = Vec::with_capacity(54);
    layers.push(conv("conv1", 224, 224, 3, 7, 64, 2, 3));
    // (in_ch, mid_ch, out_ch, blocks, input_size, first_stride)
    let stages = [
        (64u32, 64u32, 256u32, 3u32, 56u32, 1u32),
        (256, 128, 512, 4, 56, 2),
        (512, 256, 1024, 6, 28, 2),
        (1024, 512, 2048, 3, 14, 2),
    ];
    for (s, &(in_ch, mid, out, blocks, in_sz, first_stride)) in stages.iter().enumerate() {
        let stage = s + 2; // conv2_x .. conv5_x
        let out_sz = in_sz / first_stride;
        for b in 0..blocks {
            let (block_in, block_sz, stride) =
                if b == 0 { (in_ch, in_sz, first_stride) } else { (out, out_sz, 1) };
            let p = format!("conv{stage}_{}", b + 1);
            layers.push(conv(&format!("{p}_a"), block_sz, block_sz, block_in, 1, mid, stride, 0));
            layers.push(conv(&format!("{p}_b"), out_sz, out_sz, mid, 3, mid, 1, 1));
            layers.push(conv(&format!("{p}_c"), out_sz, out_sz, mid, 1, out, 1, 0));
            if b == 0 {
                layers.push(conv(&format!("{p}_proj"), block_sz, block_sz, block_in, 1, out, stride, 0));
            }
        }
    }
    layers.push(fc("fc1000", 2048, 1000));
    Dnn::new("ResNet-50", layers)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn has_expected_layer_count() {
        // 1 stem + 16 blocks * 3 convs + 4 projections + 1 fc = 54.
        assert_eq!(resnet50().num_layers(), 54);
    }

    #[test]
    fn stem_downsamples_to_112() {
        let net = resnet50();
        assert_eq!(net.layers()[0].ofmap_dims(), (112, 112));
    }

    #[test]
    fn final_stage_is_7x7() {
        let net = resnet50();
        let last_conv = net
            .layers()
            .iter()
            .rev()
            .find(|l| l.name().starts_with("conv5"))
            .expect("stage 5 exists");
        assert_eq!(last_conv.ofmap_dims(), (7, 7));
    }
}
