#!/usr/bin/env bash
# Hermetic CI for the TESA workspace: offline build, tests, doctests,
# rustdoc (warnings fatal), benches (run, with JSON artifacts + a
# regression guard), lints. Must pass with an empty cargo registry.
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release --offline --workspace
cargo test -q --offline --workspace
# Doctests are not covered by `cargo test` for crates with
# `harness = false` bench targets, so run them explicitly.
cargo test -q --offline --workspace --doc
cargo build --offline --benches --workspace
cargo clippy --offline --workspace --all-targets -- -D warnings
RUSTDOCFLAGS="-D warnings" cargo doc -q --offline --no-deps --workspace

# Crash/resume kill matrix in release mode (the debug run is part of the
# workspace suite above; release exercises the same binary the artifacts
# use). TESA_FAULTPOINTS is deliberately set for the harness process: the
# suite must scrub it from child campaigns, so a leaked plan here would
# fail the byte-identity assertions — a regression guard for the env
# isolation, on top of the per-scenario --faultpoints injection.
TESA_FAULTPOINTS="ckpt.write=prob:0.5;seed=7" \
    cargo test -q --offline --release --test crash_resume

# Serve smoke suite in release: boots real daemons, byte-compares daemon
# responses against the one-shot CLI, and kills one mid-campaign to prove
# checkpointed /optimize resumes bit-identically after a restart.
cargo test -q --offline --release --test serve_smoke

# Serial-fallback regression guard: the tier-1 suite must pass with the
# worker pool pinned to one lane. TESA_THREADS=1 takes every pooled hot
# loop (thermal kernels, sweep, speculation) down its inline path, so a
# bug hiding behind "the pool happened to run it" fails here. The
# thread_invariance suite sets TESA_THREADS explicitly for its child
# processes, so this blanket override does not weaken its 1/2/8 matrix.
TESA_THREADS=1 cargo test -q --offline --release

# Bench trend artifacts: short runs, machine-readable. BENCH_*.json land
# in the repo root (gitignored) for the CI runner to archive and diff
# against the previous build. Paths are absolute because cargo runs
# bench binaries from the package directory, not the workspace root.
#
# The previous build's BENCH_anneal.json (if present) becomes the
# baseline for the disabled-path overhead guard: tracing is compiled
# into the annealer hot path but off by default, and bench_guard fails
# the build if the traced-off medians regressed beyond the tolerance
# (5% by default; override with TESA_BENCH_TOLERANCE — cross-run wall
# time is noisy, so loosen it on shared runners rather than deleting
# the gate).
if [[ -f BENCH_anneal.json ]]; then
    cp BENCH_anneal.json BENCH_anneal.baseline.json
fi
# Artifacts go to a temp name first and are renamed only on success, so a
# bench binary dying mid-run cannot leave a stale or truncated JSON that
# the next build would diff against as if it were real.
cargo bench -q --offline -p tesa-bench --bench bench_thermal -- \
    --warmup 1 --iters 5 --format json --out "$PWD/BENCH_thermal.json.tmp"
mv BENCH_thermal.json.tmp BENCH_thermal.json
# bench_anneal's warm-cache benchmarks are microsecond-scale, where a
# 3-iteration median is dominated by scheduler noise; 15 iterations keep
# the guarded median stable (the cold-cache bench at ~100 ms/iter bounds
# the added wall time to a couple of seconds).
cargo bench -q --offline -p tesa-bench --bench bench_anneal -- \
    --warmup 3 --iters 15 --format json --out "$PWD/BENCH_anneal.json.tmp"
mv BENCH_anneal.json.tmp BENCH_anneal.json
cargo bench -q --offline -p tesa-bench --bench bench_sweep -- \
    --warmup 1 --iters 5 --format json --out "$PWD/BENCH_sweep.json.tmp"
mv BENCH_sweep.json.tmp BENCH_sweep.json
# Pool micro-bench: dispatch latency and the lane-count scaling curve.
# Informational artifact (no cross-run guard — sub-microsecond dispatch
# medians are too noisy on shared runners to gate on).
cargo bench -q --offline -p tesa-bench --bench bench_pool -- \
    --warmup 2 --iters 15 --format json --out "$PWD/BENCH_pool.json.tmp"
mv BENCH_pool.json.tmp BENCH_pool.json
# Daemon request latency over real TCP (cold vs warm cache, batch
# shapes). 5 iterations keep the batch64 burst (~0.8 s each) CI-sized;
# the warm/cold ratio being gated is ~40x, far above measurement noise.
cargo bench -q --offline -p tesa-bench --bench bench_serve -- \
    --warmup 1 --iters 5 --format json --out "$PWD/BENCH_serve.json.tmp"
mv BENCH_serve.json.tmp BENCH_serve.json
# Resident-evaluator gate, within this run's artifact: a warm /evaluate
# (eval-memo hit) must answer at least 2x faster than a cold one. If this
# fails, the daemon is re-running exact solves for designs it has already
# answered — the whole point of serving is gone.
cargo run -q --offline --release -p tesa-bench --bin bench_guard -- \
    BENCH_serve.json \
    --speedup "serve/evaluate/cold=serve/evaluate/warm" \
    --min-speedup "${TESA_BENCH_MIN_SERVE_SPEEDUP:-2.0}"
# Metrics-scrape gate, within this run's artifact: rendering the full
# Prometheus exposition (every endpoint family plus the solver/annealer
# histograms the earlier benchmarks populated) must answer at least as
# fast as one cold /evaluate. If a scrape costs more than an evaluation,
# monitoring is competing with the work it monitors.
cargo run -q --offline --release -p tesa-bench --bin bench_guard -- \
    BENCH_serve.json \
    --speedup "serve/evaluate/cold=serve/metrics_scrape" \
    --min-speedup "${TESA_BENCH_MIN_SCRAPE_SPEEDUP:-1.0}"
# Disabled-path overhead gate: the warm-cache benchmarks run with tracing,
# screening, and speculation all off — and, since the observability PR,
# with the always-on metrics registry recording on every temperature step,
# memo lookup, and thermal solve — so a regression here means the new
# machinery (now including metrics record cost) exceeds the tolerance even
# when nobody asked for it. bench_serve's metrics/record_x1000 row tracks
# the raw per-touch cost for triage when this gate trips.
if [[ -f BENCH_anneal.baseline.json ]]; then
    cargo run -q --offline --release -p tesa-bench --bin bench_guard -- \
        BENCH_anneal.baseline.json BENCH_anneal.json \
        --tolerance "${TESA_BENCH_TOLERANCE:-0.05}" \
        --filter warm_cache
    # The cold-cache variants gate the same disabled-path overhead on the
    # full-evaluation trajectory (checkpointing and fault injection are
    # compiled into the annealer/evaluator hot paths but off by default).
    cargo run -q --offline --release -p tesa-bench --bin bench_guard -- \
        BENCH_anneal.baseline.json BENCH_anneal.json \
        --tolerance "${TESA_BENCH_TOLERANCE:-0.05}" \
        --filter cold_cache
    rm -f BENCH_anneal.baseline.json
else
    echo "bench_guard: no previous BENCH_anneal.json — baseline recorded, guard skipped"
fi
# Enabled-path speedup gates, all *within this run's artifact* so they
# are immune to cross-run machine drift. They only bind on runners with
# enough cores; on narrower machines the pool runs (or speculation
# auto-disables to) the serial path and the disabled-path guard above is
# the binding check.
if [[ "$(nproc)" -ge 4 ]]; then
    # Parallel thermal kernels: the default-lanes production-size solve
    # must beat its own single-lane variant by >=1.5x, for both stacks.
    for stack in 2d_4layer 3d_6layer; do
        cargo run -q --offline --release -p tesa-bench --bin bench_guard -- \
            BENCH_thermal.json \
            --speedup "thermal/solve/$stack/64/threads1=thermal/solve/$stack/64" \
            --min-speedup "${TESA_BENCH_MIN_THERMAL_SPEEDUP:-1.5}"
    done
    # Multi-RHS batching must pay for itself: one lockstep batch of eight
    # same-model solves has to beat eight serial solves of the identical
    # systems by >=1.5x within this run's artifact. If this fails, the
    # fused sweeps are not amortizing the matrix traversal and the batched
    # evaluate/screen/sweep paths are plumbing without a payoff.
    cargo run -q --offline --release -p tesa-bench --bin bench_guard -- \
        BENCH_thermal.json \
        --speedup "thermal/batch/2d_4layer/64/batch1_x8=thermal/batch/2d_4layer/64/batch8" \
        --min-speedup "${TESA_BENCH_MIN_BATCH_SPEEDUP:-1.5}"
    # Screening + speculation must pay for themselves: the spec variant
    # is never allowed to be slower than the serial cold-cache anneal
    # (min-speedup 1.0 — the accelerations auto-disable when they cannot
    # win, so "at least break even" is the invariant worth pinning).
    cargo run -q --offline --release -p tesa-bench --bin bench_guard -- \
        BENCH_anneal.json \
        --speedup "anneal/msa_small_space_cold_cache=anneal/msa_small_space_cold_cache_spec" \
        --min-speedup "${TESA_BENCH_MIN_SPEEDUP:-1.0}"
else
    echo "bench_guard: <4 cores — thermal and speculative speedup gates skipped"
fi
