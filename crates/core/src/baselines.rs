//! The paper's comparison points: the temperature-unaware baselines SC1 and
//! SC2 (Sec. IV-B2) and adaptations of two prior 2.5D floorplanning works,
//! W1 (TAP-2.5D-style) and W2 (cross-layer co-optimization style)
//! (Table III).
//!
//! Every baseline *chooses* a design with its own (deficient) models, and
//! is then re-evaluated with TESA's full models — that second evaluation is
//! what exposes latency misses, thermal violations, and runaways.

use crate::anneal::{optimize_with, AnnealOutcome, MsaConfig};
use crate::constraints::Constraints;
use crate::design::{ChipletConfig, DesignSpace, Integration, McmDesign};
use crate::eval::{EvalOptions, Evaluator, McmEvaluation};
use crate::exhaustive::sweep;
use crate::objective::Objective;
use crate::power::LeakageModel;
use tesa_workloads::MultiDnnWorkload;

/// A baseline's choice plus its re-evaluation under TESA's full models.
#[derive(Debug, Clone)]
pub struct BaselineReport {
    /// What the baseline believed it was building (evaluated with the
    /// baseline's own models).
    pub believed: McmEvaluation,
    /// The same design evaluated with TESA's full models (exponential
    /// leakage, thermal solver enabled).
    pub actual: McmEvaluation,
}

impl BaselineReport {
    fn new(
        workload: &MultiDnnWorkload,
        believed_by: &Evaluator,
        design: &McmDesign,
        constraints: &Constraints,
        grid_cells: usize,
    ) -> Self {
        let full = Evaluator::new(
            workload.clone(),
            EvalOptions { grid_cells, ..EvalOptions::default() },
        );
        Self {
            believed: believed_by.evaluate(design, constraints),
            actual: full.evaluate(design, constraints),
        }
    }
}

/// The SC1 design: maximum parallelism without temperature awareness.
/// Every DNN gets a dedicated chiplet (six 180x180 arrays with 1,536 KB of
/// SRAM each, i.e. 512 KiB per bank) at the maximum 1 mm ICS (Fig. 5).
pub fn sc1_design(integration: Integration, freq_mhz: u32) -> McmDesign {
    McmDesign {
        chiplet: ChipletConfig { array_dim: 180, sram_kib_per_bank: 512, integration },
        ics_um: 1000,
        freq_mhz,
    }
}

/// Runs SC1: evaluates the fixed maximum-parallelism design with
/// temperature-unaware models, then with the full models.
pub fn run_sc1(
    workload: &MultiDnnWorkload,
    integration: Integration,
    freq_mhz: u32,
    constraints: &Constraints,
    grid_cells: usize,
) -> BaselineReport {
    let unaware = Evaluator::new(
        workload.clone(),
        EvalOptions { grid_cells, ..EvalOptions::temperature_unaware() },
    );
    let design = sc1_design(integration, freq_mhz);
    BaselineReport::new(workload, &unaware, &design, constraints, grid_cells)
}

/// Runs SC2: chiplet sizing without temperature. An exhaustive sweep with
/// the thermal and leakage models *disabled* (the power constraint applies
/// to dynamic power only) picks the objective-optimal design; the full
/// models then reveal its real temperature.
///
/// Returns `None` when even the temperature-unaware search finds nothing
/// feasible (latency/area/dynamic-power limits alone can be binding).
#[allow(clippy::too_many_arguments)] // mirrors the experiment parameters of Table IV
pub fn run_sc2(
    workload: &MultiDnnWorkload,
    space: &DesignSpace,
    integration: Integration,
    freq_mhz: u32,
    constraints: &Constraints,
    objective: &Objective,
    grid_cells: usize,
    threads: usize,
) -> Option<BaselineReport> {
    let unaware = Evaluator::new(
        workload.clone(),
        EvalOptions { grid_cells, ..EvalOptions::temperature_unaware() },
    );
    let result = sweep(&unaware, space, integration, freq_mhz, constraints, objective, threads);
    let chosen = result.best?;
    Some(BaselineReport::new(workload, &unaware, &chosen.design, constraints, grid_cells))
}

/// W1 (TAP-2.5D-style): a thermally-aware placement method with **no
/// performance model and no leakage model**, minimizing peak temperature.
///
/// *Original adoption*: the chiplet architecture is fixed (a small 16x16
/// array with 8 KiB banks — W1 never sizes chiplets) and only the spacing
/// is tuned for minimum temperature; the resulting MCM then misses the
/// latency constraint by a wide margin.
pub fn run_w1_original(
    workload: &MultiDnnWorkload,
    integration: Integration,
    freq_mhz: u32,
    constraints: &Constraints,
    space: &DesignSpace,
    grid_cells: usize,
) -> BaselineReport {
    // W1's internal view: thermal enabled but leakage-free, no latency or
    // power constraints (it has no performance model to check them with).
    let internal = Evaluator::new(
        workload.clone(),
        EvalOptions {
            leakage: LeakageModel::Disabled,
            grid_cells,
            ..EvalOptions::default()
        },
    );
    let relaxed = Constraints { min_fps: 0.0, power_budget_w: f64::INFINITY, ..*constraints };
    let chiplet = ChipletConfig { array_dim: 16, sram_kib_per_bank: 8, integration };
    // Tune ICS only, minimizing W1's own temperature estimate.
    let best_ics = space
        .ics_um_options
        .iter()
        .map(|&ics_um| {
            let d = McmDesign { chiplet, ics_um, freq_mhz };
            let e = internal.evaluate(&d, &relaxed);
            (ics_um, e.peak_temp_c)
        })
        .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite temperature"))
        .map(|(ics, _)| ics)
        .expect("non-empty ICS options");
    let design = McmDesign { chiplet, ics_um: best_ics, freq_mhz };
    BaselineReport::new(workload, &internal, &design, constraints, grid_cells)
}

/// W1 with TESA's performance and power constraints bolted on (Table III,
/// right column): the chiplet size becomes searchable, the objective is
/// still pure temperature minimization, but leakage stays absent from W1's
/// thermal estimates — so the design it declares feasible can exceed the
/// real budget.
#[allow(clippy::too_many_arguments)]
pub fn run_w1_constrained(
    workload: &MultiDnnWorkload,
    space: &DesignSpace,
    integration: Integration,
    freq_mhz: u32,
    constraints: &Constraints,
    grid_cells: usize,
    msa: &MsaConfig,
) -> (Option<BaselineReport>, AnnealOutcome) {
    let internal = Evaluator::new(
        workload.clone(),
        EvalOptions {
            leakage: LeakageModel::Disabled,
            grid_cells,
            // Search mode: annealing only scores feasible designs, so the
            // lazy thermal shortcut cannot change W1's choices.
            lazy: true,
            ..EvalOptions::default()
        },
    );
    let outcome = optimize_with(
        &internal,
        space,
        integration,
        freq_mhz,
        constraints,
        |e| e.peak_temp_c,
        msa,
    );
    let report = outcome.best.as_ref().map(|best| {
        BaselineReport::new(workload, &internal, &best.design, constraints, grid_cells)
    });
    (report, outcome)
}

/// W2 (cross-layer co-optimization style): minimizes a weighted sum of
/// temperature, MCM cost, and latency with a **linear** leakage model that
/// under-estimates leakage at high temperature.
///
/// *Original adoption* runs without performance/power constraints;
/// *constrained adoption* applies the full constraint set. Either way the
/// linear leakage model is what TESA's full evaluation then contradicts.
#[allow(clippy::too_many_arguments)]
pub fn run_w2(
    workload: &MultiDnnWorkload,
    space: &DesignSpace,
    integration: Integration,
    freq_mhz: u32,
    constraints: &Constraints,
    constrained: bool,
    grid_cells: usize,
    msa: &MsaConfig,
) -> (Option<BaselineReport>, AnnealOutcome) {
    let internal = Evaluator::new(
        workload.clone(),
        EvalOptions {
            leakage: LeakageModel::Linear,
            grid_cells,
            // Search mode (see run_w1_constrained).
            lazy: true,
            ..EvalOptions::default()
        },
    );
    let search_constraints = if constrained {
        *constraints
    } else {
        Constraints {
            min_fps: 0.0,
            power_budget_w: f64::INFINITY,
            temp_budget_c: f64::INFINITY,
            ..*constraints
        }
    };
    // W2's weighted objective: normalized temperature + cost + latency.
    let t_ref = constraints.temp_budget_c;
    let cost_ref = 10.0;
    let lat_ref = constraints.frame_window_s().max(1e-9);
    let outcome = optimize_with(
        &internal,
        space,
        integration,
        freq_mhz,
        &search_constraints,
        move |e| e.peak_temp_c / t_ref + e.mcm_cost_usd / cost_ref + e.latency_s / lat_ref,
        msa,
    );
    let report = outcome.best.as_ref().map(|best| {
        BaselineReport::new(workload, &internal, &best.design, constraints, grid_cells)
    });
    (report, outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tesa_workloads::arvr_suite;

    #[test]
    fn sc1_has_six_chiplets_and_max_ics() {
        let d = sc1_design(Integration::TwoD, 500);
        assert_eq!(d.chiplet.array_dim, 180);
        assert_eq!(d.chiplet.sram_total_kib(), 1536);
        assert_eq!(d.ics_um, 1000);
        let w = arvr_suite();
        let r = run_sc1(&w, Integration::TwoD, 500, &Constraints::edge_device(30.0, 75.0), 32);
        assert_eq!(r.actual.mesh.map(|m| m.count()), Some(6), "one chiplet per DNN");
    }

    #[test]
    fn sc1_believes_itself_cool_but_is_not() {
        let w = arvr_suite();
        let c = Constraints::edge_device(30.0, 75.0);
        let r = run_sc1(&w, Integration::TwoD, 500, &c, 32);
        // The temperature-unaware evaluation never sees a thermal problem…
        assert!(!r
            .believed
            .violations
            .iter()
            .any(|v| matches!(v, crate::Violation::Thermal { .. })));
        // …but the full model shows real heating well above ambient.
        assert!(r.actual.peak_temp_c > 60.0, "got {}", r.actual.peak_temp_c);
    }

    #[test]
    fn w1_original_misses_latency_badly() {
        let w = arvr_suite();
        let c = Constraints::edge_device(30.0, 75.0);
        let space = DesignSpace::tesa_default();
        let r = run_w1_original(&w, Integration::TwoD, 500, &c, &space, 32);
        // 16x16 chiplets cannot run U-Net at 30 fps — latency is violated
        // by an order of magnitude.
        let ratio = c.min_fps / r.actual.achieved_fps;
        assert!(ratio > 10.0, "latency miss only {ratio}x");
    }
}
