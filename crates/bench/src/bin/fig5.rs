//! Fig. 5: the SC1 baseline — maximum parallelism without thermal
//! awareness. Six 180x180 chiplets (1,536 KB SRAM each) at the maximum
//! 1 mm ICS, one DNN per chiplet. The paper's observations: every SC1 MCM
//! exceeds 75 °C (both frequencies shown for 2D and 3D), and the 3D
//! variant additionally violates the 15 W power budget once leakage is
//! accounted for.
//!
//! Also exports the SC1 thermal maps as CSV grids (`out/fig5_*.csv`).

use tesa::baselines::{run_sc1, sc1_design};
use tesa::design::Integration;
use tesa::eval::{EvalOptions, Evaluator};
use tesa::report::{feasibility_cell, temp_cell, Table};
use tesa::Constraints;
use tesa_workloads::arvr_suite;

fn main() {
    let workload = arvr_suite();
    let constraints = Constraints::edge_device(30.0, 75.0);
    let mut table = Table::new(vec![
        "SC1 variant",
        "Peak temp.",
        "Chip power",
        "DRAM power",
        "Total power",
        "Full-model verdict",
    ]);

    let full = Evaluator::new(workload.clone(), EvalOptions::default());
    for integration in [Integration::TwoD, Integration::ThreeD] {
        for freq in [400u32, 500] {
            eprintln!("SC1 {integration} {freq} MHz ...");
            let report = run_sc1(&workload, integration, freq, &constraints, 64);
            let a = &report.actual;
            table.row(vec![
                format!("{integration} @ {freq} MHz"),
                temp_cell(a),
                format!("{:.2} W", a.chip_power_w),
                format!("{:.2} W", a.dram_power_w),
                format!("{:.2} W", a.total_power_w),
                feasibility_cell(a),
            ]);
            // Export the thermal map of the hottest phase.
            if let Some(field) = full.thermal_map(&sc1_design(integration, freq), &constraints) {
                let device_layer = match integration {
                    Integration::TwoD => 1,
                    Integration::ThreeD => 3,
                };
                let path = tesa_bench::out_dir()
                    .join(format!("fig5_sc1_{integration}_{freq}mhz.csv"));
                std::fs::write(&path, field.to_csv(device_layer)).expect("write thermal map");
                println!("thermal map written: {}", path.display());
            }
        }
    }

    println!("\nFIG. 5: SC1 MCMs that maximize parallelism without thermal awareness");
    println!("(each chiplet: 180x180 array with 1,536 KB SRAM; ICS = 1 mm; 6 chiplets)\n");
    println!("{table}");
}
