//! Power injection maps over the thermal grid.

use crate::geometry::Rect;

/// Per-cell power injection (watts) for every layer of a model's grid.
///
/// Created by [`crate::ThermalModel::zero_power`] so its dimensions always
/// match the model.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerMap {
    pub(crate) nx: usize,
    pub(crate) ny: usize,
    pub(crate) width_m: f64,
    pub(crate) height_m: f64,
    /// `layers * ny * nx` watts per cell.
    pub(crate) watts: Vec<f64>,
}

impl PowerMap {
    pub(crate) fn new(nx: usize, ny: usize, layers: usize, width_m: f64, height_m: f64) -> Self {
        Self { nx, ny, width_m, height_m, watts: vec![0.0; nx * ny * layers] }
    }

    fn num_layers(&self) -> usize {
        self.watts.len() / (self.nx * self.ny)
    }

    /// Total injected power in watts.
    pub fn total_w(&self) -> f64 {
        self.watts.iter().sum()
    }

    /// Resets every cell to zero watts, keeping the allocation — hot
    /// loops (leakage co-iteration, transient stepping) reuse one map
    /// instead of allocating a fresh one per pass.
    pub fn clear(&mut self) {
        self.watts.fill(0.0);
    }

    /// Adds `watts` distributed uniformly over `rect` in layer
    /// `layer_idx` (0 = bottom). Cells receive power proportional to their
    /// overlap with the rectangle.
    ///
    /// # Panics
    ///
    /// Panics if the layer index is out of range, the power is negative, or
    /// the rectangle lies entirely outside the grid.
    pub fn add_uniform_rect(&mut self, layer_idx: usize, rect: Rect, watts: f64) {
        assert!(layer_idx < self.num_layers(), "layer index out of range");
        assert!(watts >= 0.0, "power must be non-negative");
        if watts == 0.0 {
            return;
        }
        let cw = self.width_m / self.nx as f64;
        let ch = self.height_m / self.ny as f64;
        // Cells possibly touched by the rectangle.
        let ix0 = ((rect.x / cw).floor().max(0.0)) as usize;
        let iy0 = ((rect.y / ch).floor().max(0.0)) as usize;
        let ix1 = (((rect.x2() / cw).ceil()) as usize).min(self.nx);
        let iy1 = (((rect.y2() / ch).ceil()) as usize).min(self.ny);
        assert!(
            ix0 < ix1 && iy0 < iy1,
            "power rectangle lies outside the grid footprint"
        );
        let density = watts / rect.area();
        let base = layer_idx * self.nx * self.ny;
        let mut injected = 0.0;
        for iy in iy0..iy1 {
            for ix in ix0..ix1 {
                let cell = Rect::new(ix as f64 * cw, iy as f64 * ch, cw, ch);
                let a = cell.overlap_area(&rect);
                if a > 0.0 {
                    self.watts[base + iy * self.nx + ix] += density * a;
                    injected += density * a;
                }
            }
        }
        debug_assert!(
            (injected - watts).abs() <= 1e-9 * watts.max(1.0) + 1e-12
                || rect.x < 0.0
                || rect.y < 0.0
                || rect.x2() > self.width_m
                || rect.y2() > self.height_m,
            "in-bounds rectangle should inject all its power"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map() -> PowerMap {
        PowerMap::new(8, 8, 2, 8e-3, 8e-3)
    }

    #[test]
    fn uniform_rect_conserves_power() {
        let mut p = map();
        p.add_uniform_rect(0, Rect::new(1e-3, 1e-3, 3e-3, 2e-3), 5.0);
        assert!((p.total_w() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn misaligned_rect_conserves_power() {
        let mut p = map();
        // Not aligned to the 1 mm cell grid.
        p.add_uniform_rect(1, Rect::new(0.3e-3, 0.7e-3, 2.45e-3, 3.21e-3), 2.5);
        assert!((p.total_w() - 2.5).abs() < 1e-9);
    }

    #[test]
    fn two_sources_accumulate() {
        let mut p = map();
        let r = Rect::new(2e-3, 2e-3, 2e-3, 2e-3);
        p.add_uniform_rect(0, r, 1.0);
        p.add_uniform_rect(0, r, 2.0);
        assert!((p.total_w() - 3.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "layer index")]
    fn bad_layer_panics() {
        map().add_uniform_rect(5, Rect::new(0.0, 0.0, 1e-3, 1e-3), 1.0);
    }

    #[test]
    #[should_panic(expected = "outside the grid")]
    fn fully_outside_rect_panics() {
        map().add_uniform_rect(0, Rect::new(20e-3, 20e-3, 1e-3, 1e-3), 1.0);
    }

    #[test]
    fn clear_zeroes_without_reallocating() {
        let mut p = map();
        p.add_uniform_rect(0, Rect::new(1e-3, 1e-3, 3e-3, 2e-3), 5.0);
        let cells = p.watts.len();
        p.clear();
        assert_eq!(p.total_w(), 0.0);
        assert_eq!(p.watts.len(), cells);
    }

    #[test]
    fn zero_watts_is_a_noop() {
        let mut p = map();
        p.add_uniform_rect(0, Rect::new(0.0, 0.0, 1e-3, 1e-3), 0.0);
        assert_eq!(p.total_w(), 0.0);
    }
}
