//! Structured observability for the DSE pipeline: spans, events, and
//! counters emitted as JSONL.
//!
//! TESA's headline result is a search *trajectory* — MSA start quality,
//! acceptance rates, evaluator cache behaviour, CG iteration counts — and
//! this module is the substrate that captures it. Design goals, in order:
//!
//! 1. **Near-zero overhead when disabled.** Every entry point checks one
//!    relaxed atomic load and returns without allocating, reading the
//!    clock, or touching thread-local state. Tracing is off unless a
//!    session is active, so instrumented hot loops (the annealer, the CG
//!    solve) pay only the branch.
//! 2. **Thread-safe without contention.** Events buffer in a thread-local
//!    `Vec` and reach the shared sink only when the thread's *outermost*
//!    span closes, on overflow, or at thread exit. The workspace's
//!    parallelism is `std::thread::scope`-based and every worker wraps its
//!    work in a span, so worker events are in the sink by the time the
//!    spawning call returns (scope join alone does not wait for TLS
//!    destructors — spanless worker events are only guaranteed at thread
//!    exit).
//! 3. **Zero dependencies.** Events serialize through [`crate::Json`];
//!    the sink is any `Write + Send`.
//!
//! # Event schema
//!
//! One JSON object per line. Common keys: `ts_us` (microseconds since the
//! first session of the process), `tid` (small per-thread integer), `kind`
//! and `name`. Per kind:
//!
//! * `"span"` — a timed region: `dur_us`, `depth` (nesting level on its
//!   thread, 0 = outermost), optional `f` (fields object). Emitted when
//!   the span *ends*, stamped with its start time, so inner spans appear
//!   before their parent on each thread.
//! * `"event"` — a point-in-time record with an optional `f` object.
//! * `"counter"` — a named numeric sample: `value`.
//!
//! # Examples
//!
//! ```
//! use tesa_util::trace;
//!
//! let buf = trace::SharedBuf::default();
//! let session = trace::init_writer(Box::new(buf.clone()));
//! {
//!     let mut span = trace::span("demo.work");
//!     span.field("items", tesa_util::Json::U64(3));
//!     trace::counter("demo.count", 3.0);
//! }
//! drop(session); // flush
//! let text = buf.contents();
//! assert!(text.lines().count() == 2);
//! assert!(text.contains(r#""name":"demo.work""#));
//! ```

use crate::json::Json;
use std::cell::RefCell;
use std::io::Write;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Global on/off switch — the only cost instrumentation pays when no
/// session is active.
static ENABLED: AtomicBool = AtomicBool::new(false);
/// Session generation; thread buffers stamped with an older generation are
/// discarded rather than flushed into the wrong sink.
static GENERATION: AtomicU64 = AtomicU64::new(0);
/// Monotonic source of small per-thread ids.
static NEXT_TID: AtomicU64 = AtomicU64::new(0);
/// Process-wide time origin (set once, at the first session).
static EPOCH: OnceLock<Instant> = OnceLock::new();

/// The shared sink of the active session.
static SINK: Mutex<Option<Box<dyn Write + Send>>> = Mutex::new(None);

/// Thread-local event buffer: flushed to [`SINK`] when it overflows, when
/// a depth-0 span ends on the thread, or at thread exit.
const BUF_FLUSH_LEN: usize = 4096;

thread_local! {
    static TLS: RefCell<ThreadBuf> = RefCell::new(ThreadBuf {
        tid: NEXT_TID.fetch_add(1, Ordering::Relaxed),
        generation: GENERATION.load(Ordering::Relaxed),
        depth: 0,
        events: Vec::new(),
    });
}

struct ThreadBuf {
    tid: u64,
    generation: u64,
    depth: u32,
    events: Vec<Event>,
}

impl Drop for ThreadBuf {
    fn drop(&mut self) {
        flush_events(self);
    }
}

struct Event {
    ts_us: u64,
    tid: u64,
    kind: EventKind,
    name: &'static str,
    fields: Vec<(&'static str, Json)>,
}

enum EventKind {
    Span { dur_us: u64, depth: u32 },
    Instant,
    Counter { value: f64 },
}

impl Event {
    fn to_json(&self) -> Json {
        let mut pairs: Vec<(String, Json)> = vec![
            ("ts_us".into(), Json::U64(self.ts_us)),
            ("tid".into(), Json::U64(self.tid)),
        ];
        match &self.kind {
            EventKind::Span { dur_us, depth } => {
                pairs.push(("kind".into(), Json::str("span")));
                pairs.push(("name".into(), Json::str(self.name)));
                pairs.push(("dur_us".into(), Json::U64(*dur_us)));
                pairs.push(("depth".into(), Json::U64(u64::from(*depth))));
            }
            EventKind::Instant => {
                pairs.push(("kind".into(), Json::str("event")));
                pairs.push(("name".into(), Json::str(self.name)));
            }
            EventKind::Counter { value } => {
                pairs.push(("kind".into(), Json::str("counter")));
                pairs.push(("name".into(), Json::str(self.name)));
                pairs.push(("value".into(), Json::F64(*value)));
            }
        }
        if !self.fields.is_empty() {
            let f = Json::obj(self.fields.iter().map(|(k, v)| (*k, v.clone())));
            pairs.push(("f".into(), f));
        }
        Json::Obj(pairs)
    }
}

/// Serializes and writes a buffer's events to the sink, if the buffer
/// belongs to the current generation and a sink is installed.
fn flush_events(buf: &mut ThreadBuf) {
    if buf.events.is_empty() {
        return;
    }
    let events = std::mem::take(&mut buf.events);
    if buf.generation != GENERATION.load(Ordering::Relaxed) {
        return; // stale events from a previous session
    }
    let mut text = String::new();
    for e in &events {
        text.push_str(&e.to_json().to_string());
        text.push('\n');
    }
    let mut sink = SINK.lock().expect("trace sink poisoned");
    if let Some(w) = sink.as_mut() {
        // A sink write failure must not panic the traced computation.
        let _ = w.write_all(text.as_bytes());
    }
}

fn now_us() -> u64 {
    u64::try_from(EPOCH.get_or_init(Instant::now).elapsed().as_micros()).unwrap_or(u64::MAX)
}

/// Appends one event to the current thread's buffer.
fn record(kind: EventKind, name: &'static str, fields: Vec<(&'static str, Json)>) {
    record_at(now_us(), kind, name, fields);
}

/// Appends one event with an explicit timestamp (spans are stamped with
/// their *start* time even though they are recorded at drop).
fn record_at(ts_us: u64, kind: EventKind, name: &'static str, fields: Vec<(&'static str, Json)>) {
    // `std::thread::scope` joins when the worker *closure* returns, which is
    // before the thread's TLS destructors (and their flush) run — so a
    // depth-0 span end must flush eagerly. Instrumented worker code wraps
    // its work in a span, making "scope joined ⇒ events in the sink" hold.
    // Persistent `pool` workers never exit at all; they call
    // [`flush_current_thread`] after every job instead.
    let root_span_end = matches!(kind, EventKind::Span { depth: 0, .. });
    TLS.with(|tls| {
        let mut buf = tls.borrow_mut();
        let generation = GENERATION.load(Ordering::Relaxed);
        if buf.generation != generation {
            buf.events.clear();
            buf.generation = generation;
            buf.depth = 0;
        }
        let tid = buf.tid;
        buf.events.push(Event { ts_us, tid, kind, name, fields });
        if buf.events.len() >= BUF_FLUSH_LEN || root_span_end {
            flush_events(&mut buf);
        }
    });
}

/// Whether a trace session is active. Instrumentation that has to do any
/// work *before* calling [`span`]/[`event`]/[`counter`] (building field
/// values, reading stats) should gate on this.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Flushes the calling thread's buffered events to the active sink.
///
/// The TLS buffer normally drains when a depth-0 span ends or the thread
/// exits. Threads that outlive both — the persistent [`crate::pool`]
/// workers — call this after every job so "the parallel region returned ⇒
/// its events are in the sink" keeps holding. Cheap when there is nothing
/// buffered; a no-op when no session is active (stale events are dropped
/// by the generation guard).
pub fn flush_current_thread() {
    TLS.with(|tls| flush_events(&mut tls.borrow_mut()));
}

/// An active trace session. Dropping it disables tracing, flushes the
/// dropping thread's buffer, and closes the sink.
///
/// Only one session can be active at a time; initializing while another
/// session is active replaces its sink (intended for tests — production
/// callers hold one session for the process lifetime).
#[must_use = "dropping the session is what flushes and closes the trace"]
pub struct TraceSession(());

impl Drop for TraceSession {
    fn drop(&mut self) {
        ENABLED.store(false, Ordering::Relaxed);
        TLS.with(|tls| flush_events(&mut tls.borrow_mut()));
        let mut sink = SINK.lock().expect("trace sink poisoned");
        if let Some(w) = sink.as_mut() {
            let _ = w.flush();
        }
        *sink = None;
    }
}

/// Starts a session writing JSONL to `writer`.
pub fn init_writer(writer: Box<dyn Write + Send>) -> TraceSession {
    let _ = EPOCH.get_or_init(Instant::now);
    GENERATION.fetch_add(1, Ordering::Relaxed);
    *SINK.lock().expect("trace sink poisoned") = Some(writer);
    ENABLED.store(true, Ordering::Relaxed);
    TraceSession(())
}

/// Starts a session writing JSONL to a (buffered) file at `path`,
/// truncating any existing file.
///
/// # Errors
///
/// Returns the underlying I/O error when the file cannot be created.
pub fn init_file<P: AsRef<std::path::Path>>(path: P) -> std::io::Result<TraceSession> {
    let file = std::fs::File::create(path)?;
    Ok(init_writer(Box::new(std::io::BufWriter::new(file))))
}

/// A timed region. Created by [`span`]; the record is emitted when the
/// value drops, carrying the start timestamp, the duration, and the
/// nesting depth on its thread.
pub struct Span {
    /// `Some` only while tracing is enabled at creation time.
    start: Option<(u64, Instant)>,
    name: &'static str,
    fields: Vec<(&'static str, Json)>,
}

impl Span {
    /// Attaches a key/value field to the span record (no-op when the span
    /// is disabled).
    pub fn field(&mut self, key: &'static str, value: Json) {
        if self.start.is_some() {
            self.fields.push((key, value));
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some((ts_us, start)) = self.start.take() else { return };
        let dur_us =
            u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX);
        let fields = std::mem::take(&mut self.fields);
        let depth = TLS.with(|tls| {
            let mut buf = tls.borrow_mut();
            buf.depth = buf.depth.saturating_sub(1);
            buf.depth
        });
        record_at(ts_us, EventKind::Span { dur_us, depth }, self.name, fields);
    }
}

/// Opens a span named `name`. When tracing is disabled this allocates
/// nothing and does not read the clock.
pub fn span(name: &'static str) -> Span {
    if !enabled() {
        return Span { start: None, name, fields: Vec::new() };
    }
    TLS.with(|tls| tls.borrow_mut().depth += 1);
    Span { start: Some((now_us(), Instant::now())), name, fields: Vec::new() }
}

/// Records a point-in-time event. `fields` is only invoked when tracing is
/// enabled, so building the field values costs nothing on the disabled
/// path.
pub fn event<F>(name: &'static str, fields: F)
where
    F: FnOnce() -> Vec<(&'static str, Json)>,
{
    if !enabled() {
        return;
    }
    record(EventKind::Instant, name, fields());
}

/// Records a named numeric sample.
pub fn counter(name: &'static str, value: f64) {
    if !enabled() {
        return;
    }
    record(EventKind::Counter { value }, name, Vec::new());
}

/// Flushes the calling thread's buffer to the sink. Useful before handing
/// a trace file to a reader while the session is still open.
pub fn flush() {
    if !enabled() {
        return;
    }
    TLS.with(|tls| flush_events(&mut tls.borrow_mut()));
}

/// An `Arc<Mutex<Vec<u8>>>`-backed sink for capturing a trace in memory —
/// the writer half clones into [`init_writer`], the reader half stays with
/// the test.
#[derive(Debug, Clone, Default)]
pub struct SharedBuf(std::sync::Arc<Mutex<Vec<u8>>>);

impl SharedBuf {
    /// The bytes written so far, as UTF-8 (trace output is always UTF-8).
    pub fn contents(&self) -> String {
        String::from_utf8(self.0.lock().expect("shared buf poisoned").clone())
            .expect("trace output is UTF-8")
    }
}

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().expect("shared buf poisoned").extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    /// Trace state is process-global; tests that open sessions serialize
    /// on this lock.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn capture<F: FnOnce()>(f: F) -> String {
        let buf = SharedBuf::default();
        let session = init_writer(Box::new(buf.clone()));
        f();
        drop(session);
        buf.contents()
    }

    fn parse_lines(text: &str) -> Vec<Json> {
        text.lines().map(|l| json::parse(l).expect("valid JSONL")).collect()
    }

    #[test]
    fn disabled_entry_points_are_noops() {
        let _guard = TEST_LOCK.lock().unwrap();
        assert!(!enabled());
        let mut s = span("never");
        s.field("k", Json::U64(1));
        drop(s);
        event("never", || panic!("fields must not be built when disabled"));
        counter("never", 1.0);
        flush();
    }

    #[test]
    fn events_serialize_with_schema_keys() {
        let _guard = TEST_LOCK.lock().unwrap();
        let text = capture(|| {
            event("e.alpha", || vec![("x", Json::U64(7))]);
            counter("c.beta", 2.5);
            let _s = span("s.gamma");
        });
        let lines = parse_lines(&text);
        assert_eq!(lines.len(), 3);
        for l in &lines {
            assert!(l.get("ts_us").is_some() && l.get("tid").is_some());
        }
        assert_eq!(lines[0].get("kind").and_then(Json::as_str), Some("event"));
        assert_eq!(
            lines[0].get("f").and_then(|f| f.get("x")).and_then(Json::as_u64),
            Some(7)
        );
        assert_eq!(lines[1].get("kind").and_then(Json::as_str), Some("counter"));
        assert_eq!(lines[1].get("value").and_then(Json::as_f64), Some(2.5));
        assert_eq!(lines[2].get("kind").and_then(Json::as_str), Some("span"));
        assert!(lines[2].get("dur_us").is_some());
    }

    #[test]
    fn span_nesting_emits_inner_before_outer_with_depths() {
        let _guard = TEST_LOCK.lock().unwrap();
        let text = capture(|| {
            let _outer = span("outer");
            {
                let _inner = span("inner");
                let _innermost = span("innermost");
            }
        });
        let lines = parse_lines(&text);
        let names: Vec<_> =
            lines.iter().map(|l| l.get("name").and_then(Json::as_str).unwrap()).collect();
        assert_eq!(names, ["innermost", "inner", "outer"]);
        let depths: Vec<_> =
            lines.iter().map(|l| l.get("depth").and_then(Json::as_u64).unwrap()).collect();
        assert_eq!(depths, [2, 1, 0]);
    }

    #[test]
    fn scoped_threads_flush_on_join() {
        let _guard = TEST_LOCK.lock().unwrap();
        let buf = SharedBuf::default();
        let session = init_writer(Box::new(buf.clone()));
        std::thread::scope(|scope| {
            for i in 0..3 {
                scope.spawn(move || {
                    let _s = span("worker");
                    counter("worker.i", f64::from(i));
                });
            }
        });
        // Scope has joined: every worker's buffer is already in the sink,
        // before the session closes.
        let mid = buf.contents();
        assert_eq!(mid.lines().count(), 6, "3 spans + 3 counters: {mid}");
        drop(session);
        // Per-thread ordering: each tid's span/counter pair stays ordered
        // (counter recorded inside the span's lifetime precedes its end
        // record, which is stamped at drop).
        let lines = parse_lines(&buf.contents());
        let tids: std::collections::HashSet<u64> =
            lines.iter().map(|l| l.get("tid").and_then(Json::as_u64).unwrap()).collect();
        assert_eq!(tids.len(), 3, "one tid per worker");
    }

    #[test]
    fn session_drop_disables_and_later_events_are_dropped() {
        let _guard = TEST_LOCK.lock().unwrap();
        let buf = SharedBuf::default();
        let session = init_writer(Box::new(buf.clone()));
        event("kept", Vec::new);
        drop(session);
        assert!(!enabled());
        event("lost", Vec::new);
        let text = buf.contents();
        assert!(text.contains("kept") && !text.contains("lost"));
    }

    #[test]
    fn stale_buffered_events_do_not_leak_into_a_new_session() {
        let _guard = TEST_LOCK.lock().unwrap();
        // Record into session A from a thread that outlives it, then open
        // session B from that same thread: A's unflushed events must not
        // appear in B's sink.
        let buf_a = SharedBuf::default();
        let buf_b = SharedBuf::default();
        let (tx, rx) = std::sync::mpsc::channel::<()>();
        let (done_tx, done_rx) = std::sync::mpsc::channel::<()>();
        let session_a = init_writer(Box::new(buf_a.clone()));
        let handle = std::thread::spawn(move || {
            event("from_a", Vec::new);
            done_tx.send(()).unwrap();
            rx.recv().unwrap(); // hold the thread (and its buffer) alive
            event("from_b", Vec::new);
        });
        done_rx.recv().unwrap();
        drop(session_a);
        let session_b = init_writer(Box::new(buf_b.clone()));
        tx.send(()).unwrap();
        handle.join().unwrap();
        drop(session_b);
        assert!(!buf_b.contents().contains("from_a"), "stale event leaked");
        assert!(buf_b.contents().contains("from_b"));
    }

    #[test]
    fn timestamps_are_monotone_within_a_thread() {
        let _guard = TEST_LOCK.lock().unwrap();
        let text = capture(|| {
            for _ in 0..100 {
                event("tick", Vec::new);
            }
        });
        let ts: Vec<u64> = parse_lines(&text)
            .iter()
            .map(|l| l.get("ts_us").and_then(Json::as_u64).unwrap())
            .collect();
        assert!(ts.windows(2).all(|w| w[0] <= w[1]));
    }
}
