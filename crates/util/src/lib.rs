//! `tesa-util` — the in-tree evaluation substrates of the TESA workspace.
//!
//! The workspace is *hermetic*: it builds and tests offline with an empty
//! cargo registry. Everything the test suites and experiment harnesses
//! would normally pull from crates.io lives here instead:
//!
//! * [`rng`] — a small deterministic RNG (SplitMix64-seeded xoshiro256++)
//!   with `gen_range` / `gen_bool` / `shuffle`, replacing `rand`;
//! * [`propcheck`] — a minimal property-testing harness (generator trait,
//!   configurable case count, shrinking by halving, seed printed on
//!   failure), replacing `proptest`;
//! * [`bench`](mod@bench) — a lightweight benchmark harness (warmup + N timed
//!   iterations, median/p95 report, name filtering), replacing `criterion`;
//! * [`json`] — a hand-written minimal JSON emitter *and parser*,
//!   replacing the `serde` machinery for the report paths that need
//!   machine-readable output and for reading those artifacts back;
//! * [`metrics`] — an always-on aggregate-telemetry registry (relaxed
//!   atomic counters/gauges, log-linear histograms, Prometheus text
//!   exposition), replacing `prometheus`/`metrics`;
//! * [`trace`] — a structured-observability layer (spans, events,
//!   counters → JSONL) with near-zero disabled-path overhead, replacing
//!   `tracing`/`tracing-subscriber` for pipeline introspection;
//! * [`pool`] — a persistent worker-pool engine (parked threads, one
//!   broadcast per parallel region, work-stealing index maps on top),
//!   replacing `rayon`;
//! * [`faultpoint`] — a deterministic fault-injection registry (named
//!   sites, seeded trigger schedules, env/CLI activation, one relaxed
//!   atomic load when off), replacing `fail`/`failpoints`;
//! * [`hash`] — FNV-1a, a stable 64-bit hash for checksums and per-site
//!   seeds, where `std::hash`'s per-process randomization would break
//!   reproducibility;
//! * [`http`] — a minimal HTTP/1.1 codec and blocking client over
//!   [`std::net`] (one request per connection, `Content-Length` bodies),
//!   replacing `hyper`/`reqwest` for the `tesa serve` daemon.
//!
//! Determinism is a design goal throughout: the RNG is seed-for-seed
//! reproducible across platforms, and `propcheck` replays any failure from
//! the seed it prints.

// `deny` rather than `forbid`: the pool's broadcast core carries the one
// audited `#[allow(unsafe_code)]` in the workspace (a lifetime-erased job
// pointer whose validity the submit protocol guarantees — see
// `pool::JobPtr`). Everything else stays safe code.
#![deny(unsafe_code)]
#![deny(warnings, missing_docs)]

pub mod bench;
pub mod faultpoint;
pub mod hash;
pub mod http;
pub mod json;
pub mod metrics;
pub mod pool;
pub mod propcheck;
pub mod rng;
pub mod trace;

pub use json::Json;
pub use rng::Rng;
