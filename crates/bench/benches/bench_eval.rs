//! Benchmarks of the full MCM evaluation pipeline — the unit of work the
//! optimizer performs per design point (the paper's equivalent: one
//! SCALE-Sim batch + one HotSpot run + leakage iterations).
//!
//! Run with `cargo bench --bench bench_eval [-- --bench-filter <substr>]`.

use tesa::design::{ChipletConfig, Integration, McmDesign};
use tesa::eval::{EvalOptions, Evaluator};
use tesa::Constraints;
use tesa_util::bench::BenchRunner;
use tesa_workloads::arvr_suite;

fn design(dim: u32, kib: u64, integration: Integration) -> McmDesign {
    McmDesign {
        chiplet: ChipletConfig { array_dim: dim, sram_kib_per_bank: kib, integration },
        ics_um: 500,
        freq_mhz: 400,
    }
}

fn main() {
    let mut runner = BenchRunner::from_env_args();

    let constraints = Constraints::edge_device(15.0, 85.0);
    for (label, integration) in [("2d", Integration::TwoD), ("3d", Integration::ThreeD)] {
        let evaluator = Evaluator::new(arvr_suite(), EvalOptions::default());
        let d = design(160, 512, integration);
        // Warm the perf + thermal-model caches so the measurement isolates
        // the steady-state solves + leakage iteration (the optimizer's
        // steady-state cost per candidate).
        let _ = evaluator.evaluate(&d, &constraints);
        runner.bench(&format!("eval/full/{label}"), || evaluator.evaluate(&d, &constraints));
    }

    // Un-memoized performance simulation of the whole six-DNN workload —
    // what the paper's SCALE-Sim step costs us per (array, SRAM) pair.
    runner.bench("eval/perf_cold/six_dnn_suite_128", || {
        let evaluator = Evaluator::new(arvr_suite(), EvalOptions::default());
        evaluator.perf(&ChipletConfig {
            array_dim: 128,
            sram_kib_per_bank: 512,
            integration: Integration::TwoD,
        })
    });

    let evaluator = Evaluator::new(arvr_suite(), EvalOptions::default());
    let d = design(160, 512, Integration::TwoD);
    let _ = evaluator.evaluate_cached(&d, &constraints);
    runner.bench("eval/cached/revisit", || evaluator.evaluate_cached(&d, &constraints));

    runner.report();
}
