//! Property-based tests over TESA's core data structures and invariants.

use tesa::cost::CostModel;
use tesa::design::{ChipletConfig, Integration};
use tesa::floorplan::estimate_mesh;
use tesa::power::{leakage_w, LeakageModel};
use tesa::sched::schedule;
use tesa::TechParams;
use tesa_util::propcheck::{check, ranged, vec_of, Config};
use tesa_util::{prop_assert, prop_assert_eq};

fn cfg() -> Config {
    Config::with_cases(128)
}

// ---- floorplan ----

#[test]
fn placed_chiplets_never_overlap_and_respect_ics() {
    check(
        cfg(),
        (ranged(0.5f64..4.0), ranged(0u32..1001), ranged(1u32..7)),
        |(side_mm, ics_um, cap)| {
            let ics_mm = f64::from(ics_um) * 1e-3;
            if let Some(layout) = estimate_mesh(side_mm, ics_mm, 8.0, 8.0, cap) {
                let eps = 1e-9;
                prop_assert!(layout.mesh.count() <= cap);
                for (i, a) in layout.positions_m.iter().enumerate() {
                    // Inside the interposer.
                    prop_assert!(a.x >= -eps && a.y >= -eps);
                    prop_assert!(a.x2() <= 8.0e-3 + eps && a.y2() <= 8.0e-3 + eps);
                    for b in layout.positions_m.iter().skip(i + 1) {
                        prop_assert!(!a.intersects(b), "chiplets overlap");
                        // Axis-aligned gap of at least ICS in one direction.
                        let gap_x = (b.x - a.x2()).max(a.x - b.x2());
                        let gap_y = (b.y - a.y2()).max(a.y - b.y2());
                        prop_assert!(
                            gap_x >= ics_mm * 1e-3 - eps || gap_y >= ics_mm * 1e-3 - eps,
                            "spacing below ICS"
                        );
                    }
                }
            }
            Ok(())
        },
    );
}

#[test]
fn corner_first_order_is_a_permutation() {
    check(
        cfg(),
        (ranged(0.5f64..3.0), ranged(0u32..1001), ranged(1u32..7)),
        |(side_mm, ics_um, cap)| {
            if let Some(layout) = estimate_mesh(side_mm, f64::from(ics_um) * 1e-3, 8.0, 8.0, cap) {
                let mut order = layout.corner_first_order();
                prop_assert_eq!(order.len(), layout.mesh.count() as usize);
                order.sort_unstable();
                prop_assert_eq!(order, (0..layout.mesh.count() as usize).collect::<Vec<_>>());
            }
            Ok(())
        },
    );
}

#[test]
fn smaller_chiplets_never_fit_fewer() {
    check(
        cfg(),
        (ranged(0.5f64..2.0), ranged(1.0f64..3.0), ranged(0u32..1001)),
        |(small, factor, ics_um)| {
            let ics = f64::from(ics_um) * 1e-3;
            let a = estimate_mesh(small, ics, 8.0, 8.0, 36).map(|l| l.mesh.count()).unwrap_or(0);
            let b = estimate_mesh(small * factor, ics, 8.0, 8.0, 36)
                .map(|l| l.mesh.count())
                .unwrap_or(0);
            prop_assert!(a >= b, "shrinking a chiplet cannot reduce the fit");
            Ok(())
        },
    );
}

// ---- scheduler ----

#[test]
fn schedule_covers_every_dnn_exactly_once() {
    check(
        cfg(),
        (vec_of(ranged(1u64..100_000_000), 1..12), ranged(1usize..6)),
        |(cycles, chiplets)| {
            let power: Vec<f64> = cycles.iter().map(|&c| c as f64 * 1e-6).collect();
            let order: Vec<usize> = (0..chiplets).collect();
            let s = schedule(&order, &cycles, &power);
            let mut seen: Vec<usize> = s.assignments.iter().flatten().map(|d| d.0).collect();
            seen.sort_unstable();
            prop_assert_eq!(seen, (0..cycles.len()).collect::<Vec<_>>());
            // Chiplet totals are consistent.
            for (chip, q) in s.assignments.iter().enumerate() {
                let sum: u64 = q.iter().map(|d| cycles[d.0]).sum();
                prop_assert_eq!(sum, s.chiplet_cycles[chip]);
            }
            Ok(())
        },
    );
}

#[test]
fn makespan_bounds() {
    check(
        cfg(),
        (vec_of(ranged(1u64..10_000_000), 1..12), ranged(1usize..6)),
        |(cycles, chiplets)| {
            let power: Vec<f64> = cycles.iter().rev().map(|&c| c as f64).collect();
            let order: Vec<usize> = (0..chiplets).collect();
            let s = schedule(&order, &cycles, &power);
            let max = *cycles.iter().max().expect("non-empty");
            let sum: u64 = cycles.iter().sum();
            prop_assert!(s.makespan_cycles() >= max, "cannot beat the longest DNN");
            prop_assert!(s.makespan_cycles() <= sum, "cannot exceed serial execution");
            // Greedy earliest-finish is a 2-approximation of optimal makespan.
            let lower = (sum as f64 / chiplets as f64).max(max as f64);
            prop_assert!(
                (s.makespan_cycles() as f64) <= 2.0 * lower + 1.0,
                "greedy bound violated: {} > 2*{}",
                s.makespan_cycles(),
                lower
            );
            Ok(())
        },
    );
}

#[test]
fn phases_partition_the_assignments() {
    check(
        cfg(),
        (vec_of(ranged(1u64..1_000_000), 1..12), ranged(1usize..6)),
        |(cycles, chiplets)| {
            let power: Vec<f64> = cycles.iter().map(|&c| (c % 97) as f64).collect();
            let order: Vec<usize> = (0..chiplets).collect();
            let s = schedule(&order, &cycles, &power);
            let total: usize = s.phases().iter().map(Vec::len).sum();
            prop_assert_eq!(total, cycles.len());
            // Each phase uses each chiplet at most once.
            for phase in s.phases() {
                let mut chips: Vec<usize> = phase.iter().map(|&(c, _)| c).collect();
                let n = chips.len();
                chips.sort_unstable();
                chips.dedup();
                prop_assert_eq!(chips.len(), n);
            }
            Ok(())
        },
    );
}

// ---- cost model ----

#[test]
fn yield_is_a_probability() {
    check(cfg(), ranged(0.01f64..1000.0), |area| {
        let m = CostModel::default();
        let y = m.die_yield(area);
        prop_assert!(y > 0.0 && y <= 1.0);
        Ok(())
    });
}

#[test]
fn cost_monotone_in_chiplet_count() {
    check(
        cfg(),
        (ranged(16u32..256), ranged(1u32..6), ranged(1u32..4)),
        |(dim, n_a, extra)| {
            let m = CostModel::default();
            let g = ChipletConfig {
                array_dim: dim,
                sram_kib_per_bank: 512,
                integration: Integration::TwoD,
            }
            .geometry(&TechParams::default());
            let a = m.mcm_cost_usd(n_a, &g, Integration::TwoD, 64.0);
            let b = m.mcm_cost_usd(n_a + extra, &g, Integration::TwoD, 64.0);
            prop_assert!(b > a);
            Ok(())
        },
    );
}

#[test]
fn three_d_never_cheaper_per_chiplet() {
    check(cfg(), (ranged(16u32..256), ranged(3u32..12)), |(dim, kib_pow)| {
        let m = CostModel::default();
        let kib = 1u64 << kib_pow;
        let mk = |i: Integration| {
            let g = ChipletConfig { array_dim: dim, sram_kib_per_bank: kib, integration: i }
                .geometry(&TechParams::default());
            m.chiplet_cost_usd(&g, i)
        };
        prop_assert!(mk(Integration::ThreeD) > mk(Integration::TwoD) * 0.999);
        Ok(())
    });
}

// ---- power / leakage ----

#[test]
fn leakage_monotone_in_temperature() {
    check(
        cfg(),
        (ranged(16u32..256), ranged(25.0f64..140.0), ranged(0.1f64..40.0)),
        |(dim, t_a, dt)| {
            let tech = TechParams::default();
            let c = ChipletConfig {
                array_dim: dim,
                sram_kib_per_bank: 512,
                integration: Integration::TwoD,
            };
            for model in [LeakageModel::Exponential, LeakageModel::Linear] {
                let a = leakage_w(&c, &tech, t_a, model);
                let b = leakage_w(&c, &tech, t_a + dt, model);
                prop_assert!(b >= a, "{model:?} leakage decreased with temperature");
            }
            Ok(())
        },
    );
}

#[test]
fn exponential_dominates_linear_above_reference() {
    check(cfg(), (ranged(16u32..256), ranged(0.5f64..80.0)), |(dim, dt)| {
        let tech = TechParams::default();
        let c = ChipletConfig {
            array_dim: dim,
            sram_kib_per_bank: 512,
            integration: Integration::TwoD,
        };
        let t = tech.leak_ref_temp_c + dt;
        let exp = leakage_w(&c, &tech, t, LeakageModel::Exponential);
        let lin = leakage_w(&c, &tech, t, LeakageModel::Linear);
        prop_assert!(exp >= lin);
        Ok(())
    });
}

// ---- geometry ----

#[test]
fn geometry_monotone_in_architecture() {
    check(cfg(), (ranged(16u32..255), ranged(3u32..11)), |(dim, kib_pow)| {
        let tech = TechParams::default();
        let g1 = ChipletConfig {
            array_dim: dim,
            sram_kib_per_bank: 1 << kib_pow,
            integration: Integration::TwoD,
        }
        .geometry(&tech);
        let g2 = ChipletConfig {
            array_dim: dim + 1,
            sram_kib_per_bank: 1 << (kib_pow + 1),
            integration: Integration::TwoD,
        }
        .geometry(&tech);
        prop_assert!(g2.footprint_mm2 > g1.footprint_mm2);
        prop_assert!(g2.silicon_area_mm2 > g1.silicon_area_mm2);
        Ok(())
    });
}

#[test]
fn three_d_footprint_never_exceeds_2d() {
    check(cfg(), (ranged(16u32..257), ranged(3u32..13)), |(dim, kib_pow)| {
        let tech = TechParams::default();
        let kib = 1u64 << kib_pow;
        let f2 =
            ChipletConfig { array_dim: dim, sram_kib_per_bank: kib, integration: Integration::TwoD }
                .geometry(&tech)
                .footprint_mm2;
        let f3 = ChipletConfig {
            array_dim: dim,
            sram_kib_per_bank: kib,
            integration: Integration::ThreeD,
        }
        .geometry(&tech)
        .footprint_mm2;
        prop_assert!(f3 <= f2 + 1e-12, "stacking cannot grow the footprint");
        Ok(())
    });
}

// ---- harness self-check ----

/// Shrinking smoke test: a deliberately failing property must shrink to the
/// minimal counterexample (the first value at/above the failure threshold).
#[test]
fn propcheck_shrinks_to_minimal_counterexample() {
    let result = std::panic::catch_unwind(|| {
        check(Config::with_cases(64), ranged(0u64..1000), |v| {
            prop_assert!(v < 40, "boundary");
            Ok(())
        });
    });
    let msg = *result.expect_err("property must fail").downcast::<String>().expect("panic message");
    assert!(
        msg.contains("minimal failing input: 40"),
        "shrinking did not reach the boundary: {msg}"
    );
}
