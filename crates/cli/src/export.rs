//! Standard-format export of `--trace` JSONL captures, behind
//! `tesa trace export <path.jsonl> --format chrome|collapsed`.
//!
//! The native trace writes one record per *span end*, stamped with the
//! span's start time, duration, and nesting depth. Within a thread that
//! makes the record stream a post-order traversal of the span forest:
//! every child appears before its parent, and a parent's children are
//! exactly the maximal run of deeper records immediately preceding it.
//! Both exporters rebuild the forest from that invariant, streaming tree
//! by tree, so memory is bounded by the deepest in-flight subtree rather
//! than the whole file.
//!
//! * `chrome` — Chrome trace-event JSON (`{"traceEvents":[…]}`), loadable
//!   in Perfetto / `chrome://tracing`. Spans become `B`/`E` pairs on
//!   their original thread lane, point events become thread-scoped
//!   instants, counters become `C` samples. Emission clamps timestamps to
//!   be non-decreasing per thread inside each tree so the `B`/`E` pairs
//!   stay correctly nested even when microsecond rounding ties a child's
//!   end to its parent's, and the final array is stably sorted by
//!   timestamp so each lane reads as a chronological stack machine.
//! * `collapsed` — folded stacks (`root;child;leaf <self-us>`), the input
//!   `flamegraph.pl` and speedscope expect, aggregated across threads
//!   with self time = span duration minus its children's.

use std::collections::HashMap;
use std::fmt::Write as _;
use tesa_util::json::{self, Json};

/// One reconstructed span with its subtree.
struct Node {
    name: String,
    start_us: u64,
    end_us: u64,
    depth: u64,
    fields: Option<Json>,
    children: Vec<Node>,
}

/// Where completed records go: each exporter implements the three record
/// kinds plus a final wrap-up.
trait Sink {
    /// A completed depth-0 span tree on thread `tid`.
    fn tree(&mut self, tid: u64, root: &Node);
    /// A point-in-time event.
    fn instant(&mut self, tid: u64, ts_us: u64, name: &str, fields: Option<&Json>);
    /// A counter sample.
    fn counter(&mut self, tid: u64, ts_us: u64, name: &str, value: f64);
    /// Emits whatever the format needs after the last record.
    fn finish(&mut self);
}

/// Parses a JSONL trace and drives `sink`, reconstructing span forests
/// per thread. Returns the first malformed line as an error.
fn drive(text: &str, sink: &mut dyn Sink) -> Result<(), String> {
    // Completed-but-unparented subtree roots, per thread, in end order.
    let mut pending: HashMap<u64, Vec<Node>> = HashMap::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v = json::parse(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        let Some(kind) = v.get("kind").and_then(Json::as_str) else { continue };
        let ts_us = v.get("ts_us").and_then(Json::as_u64).unwrap_or(0);
        let tid = v.get("tid").and_then(Json::as_u64).unwrap_or(0);
        let name = v.get("name").and_then(Json::as_str).unwrap_or("?");
        match kind {
            "span" => {
                let dur = v.get("dur_us").and_then(Json::as_u64).unwrap_or(0);
                let depth = v.get("depth").and_then(Json::as_u64).unwrap_or(0);
                let stack = pending.entry(tid).or_default();
                // This span's children are the maximal suffix of deeper
                // pending records: anything deeper that is *not* ours
                // would already have been claimed by an earlier-ending
                // intermediate span.
                let mut i = stack.len();
                while i > 0 && stack[i - 1].depth > depth {
                    i -= 1;
                }
                let node = Node {
                    name: name.to_owned(),
                    start_us: ts_us,
                    end_us: ts_us + dur,
                    depth,
                    fields: v.get("f").cloned(),
                    children: stack.drain(i..).collect(),
                };
                if depth == 0 {
                    sink.tree(tid, &node);
                } else {
                    stack.push(node);
                }
            }
            "event" => sink.instant(tid, ts_us, name, v.get("f")),
            "counter" => {
                let value = v.get("value").and_then(Json::as_f64).unwrap_or(0.0);
                sink.counter(tid, ts_us, name, value);
            }
            _ => {}
        }
    }
    // A thread that died mid-span leaves orphans; surface them as roots
    // rather than dropping the data.
    let mut tids: Vec<u64> = pending.keys().copied().collect();
    tids.sort_unstable();
    for tid in tids {
        for node in &pending[&tid] {
            sink.tree(tid, node);
        }
    }
    sink.finish();
    Ok(())
}

// --- chrome ---------------------------------------------------------------

struct ChromeSink {
    /// Serialized events with their timestamps. Span trees only complete
    /// (and emit) when their root ends, while instants and counters emit
    /// at their file position, so arrival order is not time order; a
    /// stable sort on `ts` at finish restores it without disturbing the
    /// `B`-before-`E` emission order at equal timestamps.
    events: Vec<(u64, String)>,
    out: String,
}

impl ChromeSink {
    fn new() -> ChromeSink {
        ChromeSink { events: Vec::new(), out: String::new() }
    }

    fn emit(&mut self, ts: u64, event: Json) {
        self.events.push((ts, event.to_string()));
    }

    /// Emits `node` as a `B`/`E` pair with its subtree in between,
    /// clamping into `[lo, hi]` (the parent's interval) and advancing the
    /// thread's monotonic cursor so nesting survives rounding ties.
    fn emit_span(&mut self, tid: u64, node: &Node, lo: u64, hi: u64, cursor: &mut u64) {
        let start = node.start_us.clamp(lo, hi).max(*cursor);
        let end = node.end_us.clamp(start, hi);
        *cursor = start;
        let mut pairs = vec![
            ("name", Json::str(node.name.as_str())),
            ("ph", Json::str("B")),
            ("ts", Json::U64(start)),
            ("pid", Json::U64(1)),
            ("tid", Json::U64(tid)),
        ];
        if let Some(f) = &node.fields {
            pairs.push(("args", f.clone()));
        }
        self.emit(start, Json::obj(pairs));
        for child in &node.children {
            self.emit_span(tid, child, start, end, cursor);
        }
        let end = end.max(*cursor);
        *cursor = end;
        self.emit(end, Json::obj([
            ("name", Json::str(node.name.as_str())),
            ("ph", Json::str("E")),
            ("ts", Json::U64(end)),
            ("pid", Json::U64(1)),
            ("tid", Json::U64(tid)),
        ]));
    }
}

impl Sink for ChromeSink {
    fn tree(&mut self, tid: u64, root: &Node) {
        let mut cursor = 0;
        self.emit_span(tid, root, root.start_us, root.end_us, &mut cursor);
    }

    fn instant(&mut self, tid: u64, ts_us: u64, name: &str, fields: Option<&Json>) {
        let mut pairs = vec![
            ("name", Json::str(name)),
            ("ph", Json::str("i")),
            ("ts", Json::U64(ts_us)),
            ("pid", Json::U64(1)),
            ("tid", Json::U64(tid)),
            ("s", Json::str("t")),
        ];
        if let Some(f) = fields {
            pairs.push(("args", f.clone()));
        }
        self.emit(ts_us, Json::obj(pairs));
    }

    fn counter(&mut self, tid: u64, ts_us: u64, name: &str, value: f64) {
        self.emit(ts_us, Json::obj([
            ("name", Json::str(name)),
            ("ph", Json::str("C")),
            ("ts", Json::U64(ts_us)),
            ("pid", Json::U64(1)),
            ("tid", Json::U64(tid)),
            ("args", Json::obj([("value", Json::f64(value))])),
        ]));
    }

    fn finish(&mut self) {
        self.events.sort_by_key(|(ts, _)| *ts);
        self.out.push_str("{\"traceEvents\":[");
        for (i, (_, event)) in self.events.iter().enumerate() {
            self.out.push_str(if i == 0 { "\n" } else { ",\n" });
            self.out.push_str(event);
        }
        self.out.push_str("\n]}\n");
    }
}

// --- collapsed ------------------------------------------------------------

#[derive(Default)]
struct CollapsedSink {
    /// Folded stack → accumulated self time in microseconds.
    stacks: HashMap<String, u64>,
    out: String,
}

impl CollapsedSink {
    fn fold(&mut self, prefix: &str, node: &Node) {
        let path = if prefix.is_empty() {
            node.name.clone()
        } else {
            format!("{prefix};{}", node.name)
        };
        let dur = node.end_us.saturating_sub(node.start_us);
        let child_total: u64 = node
            .children
            .iter()
            .map(|c| c.end_us.saturating_sub(c.start_us))
            .sum();
        *self.stacks.entry(path.clone()).or_default() += dur.saturating_sub(child_total);
        for child in &node.children {
            self.fold(&path, child);
        }
    }
}

impl Sink for CollapsedSink {
    fn tree(&mut self, _tid: u64, root: &Node) {
        self.fold("", root);
    }

    // Instants and counters have no duration; folded stacks ignore them.
    fn instant(&mut self, _tid: u64, _ts_us: u64, _name: &str, _fields: Option<&Json>) {}
    fn counter(&mut self, _tid: u64, _ts_us: u64, _name: &str, _value: f64) {}

    fn finish(&mut self) {
        let mut rows: Vec<(&String, &u64)> = self.stacks.iter().collect();
        rows.sort();
        for (path, us) in rows {
            let _ = writeln!(self.out, "{path} {us}");
        }
    }
}

// --- entry points ---------------------------------------------------------

/// Exports a JSONL trace as Chrome trace-event JSON.
///
/// # Errors
///
/// Returns a message naming the first malformed line.
pub fn to_chrome(text: &str) -> Result<String, String> {
    let mut sink = ChromeSink::new();
    drive(text, &mut sink)?;
    Ok(sink.out)
}

/// Exports a JSONL trace as folded stacks for flamegraph tooling.
///
/// # Errors
///
/// Returns a message naming the first malformed line.
pub fn to_collapsed(text: &str) -> Result<String, String> {
    let mut sink = CollapsedSink::default();
    drive(text, &mut sink)?;
    Ok(sink.out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> String {
        [
            // tid 0: A(0..100){ B(10..40){ C(15..20) } D(50..90) }, post-order.
            r#"{"ts_us":15,"tid":0,"kind":"span","name":"C","dur_us":5,"depth":2}"#,
            r#"{"ts_us":10,"tid":0,"kind":"span","name":"B","dur_us":30,"depth":1,"f":{"k":1}}"#,
            r#"{"ts_us":50,"tid":0,"kind":"span","name":"D","dur_us":40,"depth":1}"#,
            r#"{"ts_us":30,"tid":0,"kind":"counter","name":"hits","value":2}"#,
            r#"{"ts_us":0,"tid":0,"kind":"span","name":"A","dur_us":100,"depth":0}"#,
            // tid 1: one event, one root span.
            r#"{"ts_us":7,"tid":1,"kind":"event","name":"ping","f":{"x":3}}"#,
            r#"{"ts_us":5,"tid":1,"kind":"span","name":"E","dur_us":10,"depth":0}"#,
        ]
        .join("\n")
    }

    /// Parses a chrome export and checks per-thread `B`/`E` nesting in
    /// array order: every `E` matches the innermost open `B` by name with
    /// a non-decreasing timestamp, and nothing stays open.
    fn assert_nested(chrome: &str) -> usize {
        let doc = json::parse(chrome).expect("chrome export must be strict JSON");
        let events = doc
            .get("traceEvents")
            .and_then(Json::as_array)
            .expect("traceEvents array");
        let mut open: HashMap<u64, Vec<(String, u64)>> = HashMap::new();
        let mut spans = 0;
        for e in events {
            let ph = e.get("ph").and_then(Json::as_str).unwrap();
            let tid = e.get("tid").and_then(Json::as_u64).unwrap();
            let ts = e.get("ts").and_then(Json::as_u64).unwrap();
            let name = e.get("name").and_then(Json::as_str).unwrap_or("").to_owned();
            match ph {
                "B" => {
                    if let Some((_, open_ts)) = open.entry(tid).or_default().last() {
                        assert!(ts >= *open_ts, "child B before parent B");
                    }
                    open.entry(tid).or_default().push((name, ts));
                }
                "E" => {
                    let (b_name, b_ts) =
                        open.get_mut(&tid).and_then(Vec::pop).expect("E without B");
                    assert_eq!(b_name, name, "E closes the innermost B");
                    assert!(ts >= b_ts, "span ends before it starts");
                    spans += 1;
                }
                _ => {}
            }
        }
        assert!(open.values().all(Vec::is_empty), "unclosed spans remain");
        spans
    }

    #[test]
    fn chrome_export_is_nested_and_lane_correct() {
        let chrome = to_chrome(&sample()).expect("export");
        assert_eq!(assert_nested(&chrome), 5, "A B C D E all close");
        let doc = json::parse(&chrome).unwrap();
        let events = doc.get("traceEvents").and_then(Json::as_array).unwrap();
        // The counter and instant survive with their kinds and lanes.
        let phs: Vec<&str> =
            events.iter().filter_map(|e| e.get("ph").and_then(Json::as_str)).collect();
        assert_eq!(phs.iter().filter(|p| **p == "C").count(), 1);
        assert_eq!(phs.iter().filter(|p| **p == "i").count(), 1);
        let ping = events
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("ping"))
            .unwrap();
        assert_eq!(ping.get("tid").and_then(Json::as_u64), Some(1));
        // Span fields ride along as args.
        let b = events
            .iter()
            .find(|e| {
                e.get("name").and_then(Json::as_str) == Some("B")
                    && e.get("ph").and_then(Json::as_str) == Some("B")
            })
            .unwrap();
        assert_eq!(b.get("args").and_then(|a| a.get("k")).and_then(Json::as_u64), Some(1));
    }

    #[test]
    fn chrome_export_clamps_rounding_ties() {
        // Child's recorded end (12+4=16) overruns its parent's (5..15):
        // microsecond truncation can do this. The export must still nest.
        let text = [
            r#"{"ts_us":12,"tid":0,"kind":"span","name":"c","dur_us":4,"depth":1}"#,
            r#"{"ts_us":5,"tid":0,"kind":"span","name":"p","dur_us":10,"depth":0}"#,
        ]
        .join("\n");
        let chrome = to_chrome(&text).expect("export");
        assert_eq!(assert_nested(&chrome), 2);
    }

    #[test]
    fn sibling_subtrees_attach_to_the_right_parent() {
        // A(0){ B(1), E(1){ F(2) } }: F must be E's child, not B's.
        let text = [
            r#"{"ts_us":1,"tid":0,"kind":"span","name":"B","dur_us":2,"depth":1}"#,
            r#"{"ts_us":4,"tid":0,"kind":"span","name":"F","dur_us":1,"depth":2}"#,
            r#"{"ts_us":3,"tid":0,"kind":"span","name":"E","dur_us":4,"depth":1}"#,
            r#"{"ts_us":0,"tid":0,"kind":"span","name":"A","dur_us":9,"depth":0}"#,
        ]
        .join("\n");
        let folded = to_collapsed(&text).expect("export");
        assert!(folded.contains("A;E;F 1"), "{folded}");
        assert!(folded.contains("A;B 2"), "{folded}");
        assert!(!folded.contains("A;B;F"), "{folded}");
    }

    #[test]
    fn collapsed_self_time_subtracts_children() {
        let folded = to_collapsed(&sample()).expect("export");
        // A is 100us with 30+40us of children → 30us self.
        assert!(folded.contains("A 30"), "{folded}");
        assert!(folded.contains("A;B 25"), "{folded}");
        assert!(folded.contains("A;B;C 5"), "{folded}");
        assert!(folded.contains("A;D 40"), "{folded}");
        assert!(folded.contains("E 10"), "{folded}");
    }

    #[test]
    fn orphaned_subtrees_become_roots() {
        // No depth-0 record: the thread died mid-span.
        let text = r#"{"ts_us":3,"tid":0,"kind":"span","name":"lost","dur_us":4,"depth":2}"#;
        let chrome = to_chrome(text).expect("export");
        assert_eq!(assert_nested(&chrome), 1);
        let folded = to_collapsed(text).expect("export");
        assert!(folded.contains("lost 4"), "{folded}");
    }

    #[test]
    fn malformed_lines_are_reported() {
        let err = to_chrome("not json").expect_err("must fail");
        assert!(err.starts_with("line 1:"), "{err}");
    }
}
