//! Calibration probe: prints the quantities the paper's qualitative claims
//! depend on, so the technology constants in `tesa::TechParams` can be
//! tuned. Not an experiment — a development tool (see DESIGN.md,
//! "Calibration targets").

use tesa::baselines::{run_sc1, sc1_design};
use tesa::design::{ChipletConfig, Integration, McmDesign};
use tesa::eval::{EvalOptions, Evaluator};
use tesa::Constraints;
use tesa_workloads::arvr_suite;

fn probe(evaluator: &Evaluator, d: &McmDesign, c: &Constraints, label: &str) {
    let e = evaluator.evaluate(d, c);
    println!(
        "{label:<44} mesh={} ics={} peak={} chipW={:.2} dramW={:.2} totW={:.2} fps={:.1} cost=${:.2} ch={} {}",
        e.mesh.map_or("-".into(), |m| m.to_string()),
        d.ics_um,
        if e.thermal_runaway { "RUNAWAY".into() } else { format!("{:.2}C", e.peak_temp_c) },
        e.chip_power_w,
        e.dram_power_w,
        e.total_power_w,
        e.achieved_fps,
        e.mcm_cost_usd,
        e.dram_channels,
        if e.is_feasible() { "FEASIBLE".to_string() } else { format!("viol={:?}", e.violations) },
    );
}

fn main() {
    let workload = arvr_suite();
    let evaluator = Evaluator::new(workload.clone(), EvalOptions::default());

    println!("== per-DNN on 200x200 / 1024 KiB banks ==");
    let chip200 = ChipletConfig {
        array_dim: 200,
        sram_kib_per_bank: 1024,
        integration: Integration::TwoD,
    };
    let reports = evaluator.perf(&chip200);
    for (dnn, r) in workload.iter().zip(reports.iter()) {
        println!(
            "  {:<12} cycles={:>12} util={:.3} dram_MB={:>8.1} peakBW(B/cyc)={:.2}",
            dnn.name(),
            r.total_cycles,
            r.average_utilization,
            r.dram_traffic.total() as f64 / 1e6,
            r.peak_dram_bytes_per_cycle
        );
    }
    let g = chip200.geometry(&EvalOptions::default().tech);
    println!(
        "  geometry: array={:.2}mm2 sram={:.2}mm2 side={:.2}mm",
        g.array_area_mm2,
        g.sram_area_mm2,
        g.side_mm()
    );

    println!("\n== SC1 (6x 180x180 / 512 KiB banks, ICS 1 mm) ==");
    for freq in [400u32, 500] {
        for integ in [Integration::TwoD, Integration::ThreeD] {
            let c = Constraints::edge_device(30.0, 75.0);
            let r = run_sc1(&workload, integ, freq, &c, 64);
            let e = &r.actual;
            println!(
                "  SC1 {integ} {freq}MHz: peak={} chipW={:.2} dramW={:.2} totW={:.2} fps={:.1} cost=${:.2}",
                if e.thermal_runaway { "RUNAWAY".into() } else { format!("{:.2}C", e.peak_temp_c) },
                e.chip_power_w,
                e.dram_power_w,
                e.total_power_w,
                e.achieved_fps,
                e.mcm_cost_usd
            );
            let _ = sc1_design(integ, freq);
        }
    }

    println!("\n== TESA flagship candidates ==");
    let c30_75 = Constraints::edge_device(30.0, 75.0);
    let c15_85 = Constraints::edge_device(15.0, 85.0);
    for (dim, kib, integ, ics, freq, label) in [
        (200u32, 1024u64, Integration::TwoD, 500u32, 400u32, "2D 200/3072 400MHz"),
        (200, 1024, Integration::TwoD, 500, 500, "2D 200/3072 500MHz"),
        (240, 1024, Integration::TwoD, 500, 500, "2D 240/3072 500MHz"),
        (196, 1024, Integration::ThreeD, 800, 400, "3D 196/3072 400MHz"),
        (216, 1024, Integration::ThreeD, 700, 400, "3D 216/3072 400MHz"),
        (216, 1024, Integration::ThreeD, 700, 500, "3D 216/3072 500MHz"),
        (96, 256, Integration::ThreeD, 950, 500, "3D 96/768 500MHz"),
    ] {
        let d = McmDesign {
            chiplet: ChipletConfig { array_dim: dim, sram_kib_per_bank: kib, integration: integ },
            ics_um: ics,
            freq_mhz: freq,
        };
        probe(&evaluator, &d, &c30_75, label);
        probe(&evaluator, &d, &c15_85, &format!("{label} @15fps/85C"));
    }
}
