//! Design points and the TESA design space (Table II): chiplet
//! configuration, integration technology, ICS, frequency, and derived
//! chiplet geometry.

use crate::tech::TechParams;
use tesa_memsim::SramConfig;
use tesa_scalesim::SramCapacities;

/// Integration technology of a chiplet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Integration {
    /// 2D: the systolic array and its three SRAMs sit side by side on one
    /// tier.
    TwoD,
    /// 3D: the three SRAMs are stacked underneath the systolic array
    /// (face-to-back), connected by TSVs — the AMD V-Cache-style option the
    /// paper investigates.
    ThreeD,
}

impl std::fmt::Display for Integration {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Integration::TwoD => "2D",
            Integration::ThreeD => "3D",
        })
    }
}

/// One chiplet architecture: a square systolic array plus three equal
/// operand SRAMs (IFMAP / FILTER / OFMAP).
///
/// The paper reports SRAM capacity as the *total* across the three banks
/// (e.g. "3,072 KB SRAM" = 3 x 1,024 KB); [`ChipletConfig::sram_total_kib`]
/// mirrors that convention.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ChipletConfig {
    /// Systolic-array dimension (the array is `array_dim x array_dim`).
    pub array_dim: u32,
    /// Capacity of each of the three operand SRAMs, in KiB.
    pub sram_kib_per_bank: u64,
    /// Integration technology.
    pub integration: Integration,
}

impl ChipletConfig {
    /// Number of PEs in the array.
    pub fn num_pes(&self) -> u64 {
        u64::from(self.array_dim) * u64::from(self.array_dim)
    }

    /// Total SRAM across the three banks, in KiB — the paper's reporting
    /// convention.
    pub fn sram_total_kib(&self) -> u64 {
        3 * self.sram_kib_per_bank
    }

    /// SRAM capacities in the performance simulator's format.
    pub fn sram_capacities(&self) -> SramCapacities {
        SramCapacities::uniform_kib(self.sram_kib_per_bank)
    }

    /// Derives the physical geometry of this chiplet under `tech`.
    pub fn geometry(&self, tech: &TechParams) -> ChipletGeometry {
        let array_area_mm2 = self.num_pes() as f64 * tech.mac_area_um2 * 1e-6;
        let bank = tech.sram.estimate(SramConfig::with_capacity_kib(self.sram_kib_per_bank));
        let sram_area_mm2 = 3.0 * bank.area_mm2;
        match self.integration {
            Integration::TwoD => {
                let total = array_area_mm2 + sram_area_mm2;
                ChipletGeometry {
                    array_area_mm2,
                    sram_area_mm2,
                    tsv_count: 0,
                    tsv_area_mm2: 0.0,
                    footprint_mm2: total,
                    silicon_area_mm2: total,
                }
            }
            Integration::ThreeD => {
                // The peak SRAM bandwidth sizes the TSV count: the IFMAP
                // bank feeds the rows and the FILTER/OFMAP banks the
                // columns, 8 bits per byte per cycle.
                let tsv_count = 3 * u64::from(self.array_dim) * 8;
                let tsv_area_mm2 = tsv_count as f64 * tech.tsv_area_um2 * 1e-6;
                let sram_tier = sram_area_mm2 + tsv_area_mm2;
                let footprint = array_area_mm2.max(sram_tier);
                ChipletGeometry {
                    array_area_mm2,
                    sram_area_mm2,
                    tsv_count,
                    tsv_area_mm2,
                    footprint_mm2: footprint,
                    // Both tiers are fabricated at the footprint size.
                    silicon_area_mm2: 2.0 * footprint,
                }
            }
        }
    }
}

impl std::fmt::Display for ChipletConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{dim}x{dim} array, {total} KB SRAM ({int})",
            dim = self.array_dim,
            total = self.sram_total_kib(),
            int = self.integration
        )
    }
}

/// Physical geometry of one chiplet.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChipletGeometry {
    /// Systolic-array tier (or region) area, mm².
    pub array_area_mm2: f64,
    /// Total SRAM area (three banks), mm².
    pub sram_area_mm2: f64,
    /// TSV count (zero in 2D).
    pub tsv_count: u64,
    /// TSV area including keep-out zones, mm².
    pub tsv_area_mm2: f64,
    /// Interposer footprint of the chiplet, mm²
    /// (3D: `max(array tier, SRAM tier)`).
    pub footprint_mm2: f64,
    /// Total silicon fabricated for the chiplet (both tiers in 3D), mm² —
    /// the cost model's input.
    pub silicon_area_mm2: f64,
}

impl ChipletGeometry {
    /// Side length of the (square) chiplet footprint, mm.
    pub fn side_mm(&self) -> f64 {
        self.footprint_mm2.sqrt()
    }

    /// Copper area fraction of the SRAM tier due to TSVs (0 in 2D); used
    /// to adjust the tier's vertical thermal conductivity.
    pub fn tsv_fill_fraction(&self) -> f64 {
        if self.footprint_mm2 > 0.0 {
            self.tsv_area_mm2 / self.footprint_mm2
        } else {
            0.0
        }
    }
}

/// One complete MCM design point: chiplet architecture, inter-chiplet
/// spacing, and operating frequency. The mesh (chiplet count and grid) is
/// *derived* by the mesh estimator, not chosen directly (paper Sec. III-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct McmDesign {
    /// Chiplet architecture.
    pub chiplet: ChipletConfig,
    /// Inter-chiplet spacing, µm.
    pub ics_um: u32,
    /// Operating frequency of the systolic arrays, MHz.
    pub freq_mhz: u32,
}

impl McmDesign {
    /// Frequency in Hz.
    pub fn freq_hz(&self) -> f64 {
        f64::from(self.freq_mhz) * 1e6
    }

    /// ICS in millimeters.
    pub fn ics_mm(&self) -> f64 {
        f64::from(self.ics_um) * 1e-3
    }
}

impl std::fmt::Display for McmDesign {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} @ {} MHz, ICS {} um", self.chiplet, self.freq_mhz, self.ics_um)
    }
}

/// An enumerable chiplet-size/ICS design space (Table II of the paper).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DesignSpace {
    /// Allowed square-array dimensions.
    pub array_dims: Vec<u32>,
    /// Allowed per-bank SRAM capacities, KiB.
    pub sram_kib_options: Vec<u64>,
    /// Allowed ICS values, µm.
    pub ics_um_options: Vec<u32>,
}

impl DesignSpace {
    /// The paper's Table II space: 121 arrays (16x16..256x256 step 2),
    /// per-bank SRAMs 8..4096 KiB in powers of two, ICS 0..1 mm in 50 µm
    /// steps.
    pub fn tesa_default() -> Self {
        Self {
            array_dims: (16..=256).step_by(2).collect(),
            sram_kib_options: (3..=12).map(|p| 1u64 << p).collect(),
            ics_um_options: (0..=1000).step_by(50).collect(),
        }
    }

    /// The optimizer-validation subspace (Sec. IV-A): 64x64..128x128
    /// arrays with a coarse 200 µm ICS step.
    pub fn validation() -> Self {
        Self {
            array_dims: (64..=128).step_by(2).collect(),
            sram_kib_options: (3..=12).map(|p| 1u64 << p).collect(),
            ics_um_options: (0..=1000).step_by(200).collect(),
        }
    }

    /// Number of (array, SRAM, ICS) combinations.
    pub fn len(&self) -> usize {
        self.array_dims.len() * self.sram_kib_options.len() * self.ics_um_options.len()
    }

    /// Whether the space is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enumerates every design in the space for one integration and
    /// frequency.
    pub fn designs(
        &self,
        integration: Integration,
        freq_mhz: u32,
    ) -> impl Iterator<Item = McmDesign> + '_ {
        self.array_dims.iter().flat_map(move |&array_dim| {
            self.sram_kib_options.iter().flat_map(move |&sram| {
                self.ics_um_options.iter().map(move |&ics_um| McmDesign {
                    chiplet: ChipletConfig {
                        array_dim,
                        sram_kib_per_bank: sram,
                        integration,
                    },
                    ics_um,
                    freq_mhz,
                })
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chiplet(dim: u32, kib: u64, integration: Integration) -> ChipletConfig {
        ChipletConfig { array_dim: dim, sram_kib_per_bank: kib, integration }
    }

    #[test]
    fn table2_space_has_paper_cardinalities() {
        let s = DesignSpace::tesa_default();
        assert_eq!(s.array_dims.len(), 121);
        assert_eq!(s.sram_kib_options.len(), 10);
        assert_eq!(s.ics_um_options.len(), 21);
        assert_eq!(s.sram_kib_options[0], 8);
        assert_eq!(*s.sram_kib_options.last().unwrap(), 4096);
    }

    #[test]
    fn sram_total_uses_paper_convention() {
        // "3,072 KB SRAM" in the paper = 3 banks of 1,024 KB.
        let c = chiplet(200, 1024, Integration::TwoD);
        assert_eq!(c.sram_total_kib(), 3072);
    }

    #[test]
    fn area_ratio_near_one_for_balanced_chiplet() {
        // Paper area-model assumption (i): array-to-SRAM area ratio ~ 1.
        // 200x200 with 1,024 KiB banks is the paper's flagship 2D chiplet.
        let tech = TechParams::default();
        let g = chiplet(200, 1024, Integration::TwoD).geometry(&tech);
        let ratio = g.array_area_mm2 / g.sram_area_mm2;
        assert!((0.5..2.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn flagship_2d_chiplet_is_a_few_mm2() {
        let tech = TechParams::default();
        let g = chiplet(200, 1024, Integration::TwoD).geometry(&tech);
        assert!((4.0..8.0).contains(&g.footprint_mm2), "got {}", g.footprint_mm2);
    }

    #[test]
    fn three_d_footprint_smaller_than_2d() {
        let tech = TechParams::default();
        let c2 = chiplet(196, 1024, Integration::TwoD).geometry(&tech);
        let c3 = chiplet(196, 1024, Integration::ThreeD).geometry(&tech);
        assert!(c3.footprint_mm2 < c2.footprint_mm2);
        // But total silicon is larger than either tier alone.
        assert!(c3.silicon_area_mm2 > c3.footprint_mm2);
        assert!(c3.tsv_count > 0);
    }

    #[test]
    fn tsv_area_is_small_but_nonzero() {
        let tech = TechParams::default();
        let g = chiplet(200, 1024, Integration::ThreeD).geometry(&tech);
        assert!(g.tsv_area_mm2 > 0.0);
        assert!(g.tsv_fill_fraction() < 0.1, "TSVs should be a minor overhead");
    }

    #[test]
    fn designs_iterator_covers_the_space() {
        let s = DesignSpace::validation();
        let n = s.designs(Integration::TwoD, 400).count();
        assert_eq!(n, s.len());
    }

    #[test]
    fn display_formats() {
        let d = McmDesign {
            chiplet: chiplet(200, 1024, Integration::TwoD),
            ics_um: 500,
            freq_mhz: 400,
        };
        let s = d.to_string();
        assert!(s.contains("200x200") && s.contains("3072 KB") && s.contains("400 MHz"));
    }
}
