//! Voltage–frequency scaling — an opt-in refinement of the paper's
//! iso-voltage frequency comparison (its future work lists "more
//! frequencies" \[25\]).
//!
//! The paper evaluates 400 and 500 MHz with dynamic power scaled linearly
//! in frequency (constant voltage). Real silicon rides a V(f) curve:
//! dynamic power scales as `V² · f` and leakage roughly as `V`. This
//! module provides a piecewise-linear V(f) curve and the corresponding
//! scale factors, so frequency sweeps beyond the paper's two points can be
//! modeled credibly.


/// A piecewise-linear voltage/frequency operating curve.
///
/// # Examples
///
/// ```
/// use tesa::dvfs::DvfsCurve;
///
/// let curve = DvfsCurve::edge_22nm();
/// // Dynamic power at 500 MHz exceeds the iso-voltage 1.25x ratio,
/// // because voltage also rises.
/// let p400 = curve.dynamic_scale(400.0);
/// let p500 = curve.dynamic_scale(500.0);
/// assert!(p500 / p400 > 1.25);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DvfsCurve {
    /// `(frequency MHz, voltage V)` anchor points, sorted by frequency.
    points: Vec<(f64, f64)>,
    /// The reference frequency whose voltage defines scale 1.0.
    ref_freq_mhz: f64,
}

impl DvfsCurve {
    /// Builds a curve from `(MHz, V)` anchors.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two anchors are given, they are not strictly
    /// increasing in frequency, or any voltage is non-positive.
    pub fn new(points: Vec<(f64, f64)>, ref_freq_mhz: f64) -> Self {
        assert!(points.len() >= 2, "a curve needs at least two anchors");
        assert!(
            points.windows(2).all(|w| w[0].0 < w[1].0),
            "anchors must be strictly increasing in frequency"
        );
        assert!(points.iter().all(|&(_, v)| v > 0.0), "voltages must be positive");
        Self { points, ref_freq_mhz }
    }

    /// A representative 22 nm edge-silicon curve: 0.65 V at 200 MHz up to
    /// 0.95 V at 800 MHz, referenced at the paper's 400 MHz point.
    pub fn edge_22nm() -> Self {
        Self::new(
            vec![(200.0, 0.65), (400.0, 0.75), (600.0, 0.85), (800.0, 0.95)],
            400.0,
        )
    }

    /// Supply voltage at `freq_mhz` (clamped to the anchor range).
    pub fn voltage(&self, freq_mhz: f64) -> f64 {
        let pts = &self.points;
        if freq_mhz <= pts[0].0 {
            return pts[0].1;
        }
        if freq_mhz >= pts[pts.len() - 1].0 {
            return pts[pts.len() - 1].1;
        }
        for w in pts.windows(2) {
            let ((f0, v0), (f1, v1)) = (w[0], w[1]);
            if freq_mhz <= f1 {
                let t = (freq_mhz - f0) / (f1 - f0);
                return v0 + t * (v1 - v0);
            }
        }
        unreachable!("frequency inside the anchor range")
    }

    /// Dynamic-power scale factor vs. the reference frequency:
    /// `(V/V_ref)² * (f/f_ref)`.
    pub fn dynamic_scale(&self, freq_mhz: f64) -> f64 {
        let v = self.voltage(freq_mhz);
        let v_ref = self.voltage(self.ref_freq_mhz);
        (v / v_ref).powi(2) * (freq_mhz / self.ref_freq_mhz)
    }

    /// Leakage scale factor vs. the reference frequency: ~linear in V.
    pub fn leakage_scale(&self, freq_mhz: f64) -> f64 {
        self.voltage(freq_mhz) / self.voltage(self.ref_freq_mhz)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn voltage_interpolates_and_clamps() {
        let c = DvfsCurve::edge_22nm();
        assert!((c.voltage(400.0) - 0.75).abs() < 1e-12);
        assert!((c.voltage(500.0) - 0.80).abs() < 1e-12, "midpoint of 400..600");
        assert!((c.voltage(100.0) - 0.65).abs() < 1e-12, "clamped low");
        assert!((c.voltage(1000.0) - 0.95).abs() < 1e-12, "clamped high");
    }

    #[test]
    fn reference_frequency_scales_to_one() {
        let c = DvfsCurve::edge_22nm();
        assert!((c.dynamic_scale(400.0) - 1.0).abs() < 1e-12);
        assert!((c.leakage_scale(400.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn dvfs_penalty_exceeds_iso_voltage_scaling() {
        // The paper scales power by f alone; with V(f) the 500 MHz point
        // costs more: (0.80/0.75)^2 * 1.25 = 1.42x.
        let c = DvfsCurve::edge_22nm();
        let scale = c.dynamic_scale(500.0);
        assert!((scale - (0.80f64 / 0.75).powi(2) * 1.25).abs() < 1e-12);
        assert!(scale > 1.25);
    }

    #[test]
    fn scales_monotone_in_frequency() {
        let c = DvfsCurve::edge_22nm();
        let mut last = 0.0;
        for f in [200.0, 300.0, 400.0, 500.0, 600.0, 700.0, 800.0] {
            let s = c.dynamic_scale(f);
            assert!(s > last);
            last = s;
        }
    }

    #[test]
    #[should_panic(expected = "at least two anchors")]
    fn single_anchor_panics() {
        let _ = DvfsCurve::new(vec![(400.0, 0.75)], 400.0);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_anchors_panic() {
        let _ = DvfsCurve::new(vec![(400.0, 0.75), (300.0, 0.7)], 400.0);
    }
}
