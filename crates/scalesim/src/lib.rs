//! Analytical systolic-array performance simulator (SCALE-Sim stand-in).
//!
//! The paper drives TESA with SCALE-Sim [Samajdar et al., ISPASS 2020], a
//! cycle-accurate simulator of stall-free DNN inference on systolic arrays
//! with double-buffered SRAMs. SCALE-Sim's timing for the three classic
//! dataflows is captured exactly by closed-form fold arithmetic; this crate
//! implements that analytical form, which is what makes the paper's
//! exhaustive-validation experiment tractable (SCALE-Sim itself needs 10
//! minutes to 12 hours *per network per design point*).
//!
//! For every layer the simulator reports compute cycles, array utilization,
//! SRAM traffic per operand (IFMAP / FILTER / OFMAP), and DRAM traffic under
//! a double-buffered tiling model — exactly the quantities TESA's power,
//! DRAM, and latency models consume (Eqs. (1)–(5) of the paper).
//!
//! [`Simulator::simulate_dnn`] is instrumented with `tesa_util::trace`:
//! a `scalesim.dnn` span per network and a `scalesim.layer` span per layer
//! (cycles, utilization). This observability trace is unrelated to
//! [`FoldTrace`], the per-fold *timing* trace of the analytical model.
//!
//! # Examples
//!
//! ```
//! use tesa_scalesim::{ArrayConfig, Dataflow, Simulator, SramCapacities};
//! use tesa_workloads::zoo;
//!
//! let sim = Simulator::new(
//!     ArrayConfig::square(128),
//!     SramCapacities::uniform_kib(512),
//!     Dataflow::WeightStationary,
//! );
//! let report = sim.simulate_dnn(&zoo::mobilenet_v1());
//! assert!(report.total_cycles > 0);
//! assert!(report.average_utilization > 0.0 && report.average_utilization <= 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bandwidth;
mod config;
mod layer_sim;
mod report;
mod sim;
mod trace;

pub use config::{ArrayConfig, Dataflow, SramCapacities};
pub use layer_sim::simulate_layer;
pub use report::{DnnReport, LayerReport, OperandTraffic};
pub use sim::Simulator;
pub use trace::{trace_layer, FoldEvent, FoldTrace};
