//! Sec. IV-B3: comparison of TESA's 2D and 3D MCM outputs, averaged over
//! both frequencies. The paper reports 3D providing up to ~39 % better OPS
//! on average while sacrificing ~61 % in MCM cost and ~66 % in DRAM power
//! at the relaxed 85 °C constraint, with the OPS advantage growing at
//! 85 °C versus 75 °C (thermal headroom lets TESA upsize the chiplets).
//!
//! TESA's designs are read from `out/table5.csv` when available (run the
//! `table5` binary first); otherwise the optimizer runs inline.

use tesa::design::Integration;
use tesa::eval::McmEvaluation;
use tesa::Constraints;
use tesa_bench::table5_data::load_table5_choices;
use tesa_bench::{standard_evaluator, tesa_optimize};

fn geo_mean_ratio(pairs: &[(f64, f64)]) -> f64 {
    let log_sum: f64 = pairs.iter().map(|(a, b)| (a / b).ln()).sum();
    (log_sum / pairs.len() as f64).exp()
}

fn main() {
    let evaluator = standard_evaluator(true);
    let choices = load_table5_choices();

    let mut per_budget: Vec<(f64, Vec<(f64, f64)>)> = vec![(75.0, vec![]), (85.0, vec![])];
    let mut cost_pairs: Vec<(f64, f64)> = Vec::new();
    let mut dram_pairs: Vec<(f64, f64)> = Vec::new();

    for fps in [15.0f64, 30.0] {
        for temp in [75.0f64, 85.0] {
            for freq in [400u32, 500] {
                let constraints = Constraints::edge_device(fps, temp);
                let run = |integration: Integration| -> Option<McmEvaluation> {
                    let design = choices.as_ref().and_then(|rows| {
                        rows.iter()
                            .find(|r| {
                                r.integration == integration
                                    && r.freq_mhz == freq
                                    && r.fps == fps
                                    && r.temp_c == temp
                            })
                            .map(|r| r.design)
                    });
                    match design {
                        Some(d) => Some(evaluator.evaluate(&d, &constraints)),
                        None => {
                            eprintln!("(optimizing inline: {integration} {freq} {fps} {temp})");
                            tesa_optimize(&evaluator, integration, freq, fps, temp).best
                        }
                    }
                };
                let (Some(d2), Some(d3)) = (run(Integration::TwoD), run(Integration::ThreeD))
                else {
                    println!(
                        "{freq} MHz {fps} fps {temp} C: no feasible design in one technology"
                    );
                    continue;
                };
                let ops_gain = 100.0 * (d3.ops / d2.ops - 1.0);
                println!(
                    "{freq} MHz {fps:>2.0} fps {temp:.0} C: OPS 2D {:.2e} vs 3D {:.2e} ({:+.1}%), \
                     cost ${:.2} vs ${:.2}, DRAM {:.2} W vs {:.2} W  [2D {} {} | 3D {} {}]",
                    d2.ops,
                    d3.ops,
                    ops_gain,
                    d2.mcm_cost_usd,
                    d3.mcm_cost_usd,
                    d2.dram_power_w,
                    d3.dram_power_w,
                    d2.design.chiplet,
                    d2.mesh.expect("mesh"),
                    d3.design.chiplet,
                    d3.mesh.expect("mesh"),
                );
                for (budget, pairs) in &mut per_budget {
                    if (temp - *budget).abs() < 1e-9 {
                        pairs.push((d3.ops, d2.ops));
                    }
                }
                cost_pairs.push((d3.mcm_cost_usd, d2.mcm_cost_usd));
                dram_pairs.push((d3.dram_power_w, d2.dram_power_w));
            }
        }
    }

    println!();
    for (budget, pairs) in &per_budget {
        if !pairs.is_empty() {
            println!(
                "average OPS advantage of 3D at {budget:.0} C: {:+.1}%",
                100.0 * (geo_mean_ratio(pairs) - 1.0)
            );
        }
    }
    if !cost_pairs.is_empty() {
        println!(
            "average 3D cost premium: {:+.1}%  |  average 3D DRAM power premium: {:+.1}%",
            100.0 * (geo_mean_ratio(&cost_pairs) - 1.0),
            100.0 * (geo_mean_ratio(&dram_pairs) - 1.0),
        );
    }
    println!("(paper: up to +39% OPS, ~61% higher cost, ~66% higher DRAM power at 85 C)");
}
