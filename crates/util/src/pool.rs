//! A persistent worker-pool engine for the workspace's parallel regions.
//!
//! The hot parallel regions of the DSE pipeline — CG mat-vecs, multigrid
//! smoother sweeps, reduction partials — last tens of microseconds at
//! production grid sizes. Spawning `std::thread::scope` threads per region
//! (the previous design) costs more than that, which is why the thermal
//! kernels used to stay serial below 64k nodes. This module keeps one set
//! of warm threads per process instead:
//!
//! * Workers are created once (lazily, on first use of [`global`]) and
//!   **parked** between jobs — they spin briefly for the next broadcast,
//!   yield, then block on a condvar. Dispatching to already-spinning
//!   workers costs on the order of a microsecond.
//! * A job is **broadcast**: the submitter publishes one closure through a
//!   generation-stamped slot (`seq` bump ⇒ new job), every worker runs it
//!   with its lane index, and an atomic countdown (`remaining`) tells the
//!   submitter when all lanes finished. The submitter itself runs lane 0,
//!   so a pool with `lanes() == n` uses exactly `n` threads.
//! * The worker count comes from the `TESA_THREADS` environment variable
//!   when set (clamped to `[1, 256]`; invalid values fall back), otherwise
//!   from [`std::thread::available_parallelism`]. `TESA_THREADS=1` is the
//!   serial-fallback switch: every entry point runs inline on the caller.
//! * Jobs submitted from *inside* a pool job run inline on the calling
//!   lane — nested parallelism degrades to serial instead of deadlocking
//!   on the single broadcast slot.
//! * A panic inside a job is caught on the worker, the broadcast completes
//!   (so the pool stays usable), and the submitter re-panics.
//! * Dropping a non-global [`Pool`] signals shutdown, wakes every parked
//!   worker, and joins them. The global pool lives for the process.
//!
//! # Safety
//!
//! Broadcasting a *borrowed* closure to persistent threads is the one
//! place in the workspace that needs `unsafe` (the crate is otherwise
//! `#![deny(unsafe_code)]`): the job slot stores a lifetime-erased
//! pointer. The submit protocol makes it sound by the same argument as
//! scoped threads — [`Pool::broadcast`] does not return until the atomic
//! countdown proves every worker has returned from the closure, and the
//! slot is cleared before the submit lock is released, so no worker can
//! observe the pointer after the closure's referent is gone.
//!
//! # Determinism
//!
//! The engine itself never reorders anything observable:
//! [`Pool::broadcast`]
//! runs `f(lane)` for every lane of a caller-chosen partition, and
//! [`Pool::scatter`] hands item *i* of a caller-built list to exactly one
//! lane.
//! As long as the caller's partition is a pure function of the problem
//! size (the thermal kernels use fixed chunk boundaries; see
//! `DESIGN.md`), results are bit-identical for any `TESA_THREADS`,
//! including 1.
//!
//! [`map_dynamic`] keeps the work-stealing index map from the previous
//! design for coarse irregular items (design sweeps, speculative move
//! batches) — same in-order output guarantee, now dispatched onto the
//! persistent workers instead of fresh threads.

use std::cell::Cell;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

/// Hard cap on the lane count (`TESA_THREADS` is clamped to this).
const MAX_LANES: usize = 256;

/// Busy-spin iterations before a waiting thread starts yielding.
const SPIN_ROUNDS: u32 = 4096;

/// Yield iterations (after spinning) before a worker parks on the condvar.
/// Yielding matters when lanes exceed cores (`TESA_THREADS` above the
/// machine width): pure spinning would steal the timeslice from the lane
/// that still has work.
const YIELD_ROUNDS: u32 = 32;

thread_local! {
    /// Set while this thread is executing a pool job (including the
    /// submitter's own lane 0); nested entry points run inline.
    static IN_JOB: Cell<bool> = const { Cell::new(false) };
}

/// A lifetime-erased pointer to the current broadcast's job closure.
///
/// Soundness: a `JobPtr` is only ever read by workers between the `seq`
/// bump that publishes it and the countdown hitting zero, and
/// [`Pool::broadcast`] keeps the closure alive (and the submit lock held)
/// until after that point — see the module docs.
#[derive(Clone, Copy)]
struct JobPtr(*const (dyn Fn(usize) + Sync));

#[allow(unsafe_code)]
// SAFETY: the pointer is dereferenced only while the submitter provably
// keeps the referent alive (see `JobPtr` and the module docs); the
// pointee is `Sync`, so shared access from worker threads is fine.
unsafe impl Send for JobPtr {}

/// Erases the closure's lifetime so it fits the job slot. Sound only
/// under the broadcast protocol: the referent outlives every possible
/// dereference because [`Pool::broadcast`] blocks until the countdown
/// proves all workers are done with it.
#[allow(unsafe_code)]
fn erase<'a>(f: &'a (dyn Fn(usize) + Sync + 'a)) -> JobPtr {
    let short: *const (dyn Fn(usize) + Sync + 'a) = f;
    // SAFETY: pure lifetime erasure of a fat raw pointer; layout is
    // unchanged and the dereference discipline is enforced by the
    // broadcast protocol (see above).
    JobPtr(unsafe {
        std::mem::transmute::<
            *const (dyn Fn(usize) + Sync + 'a),
            *const (dyn Fn(usize) + Sync + 'static),
        >(short)
    })
}

/// State shared between the submitter side and the worker threads.
struct Shared {
    /// Total lanes including the submitter's lane 0 (worker count + 1).
    lanes: usize,
    /// Job generation stamp; a change tells workers a new job is out.
    seq: AtomicU64,
    /// The published job for the current generation.
    job: Mutex<Option<JobPtr>>,
    /// Workers that have not yet finished the current generation.
    remaining: AtomicUsize,
    /// Set by a worker whose job closure panicked.
    panicked: AtomicBool,
    /// Set by `Drop`; workers exit at the next wait-loop iteration.
    shutdown: AtomicBool,
    /// Pairs with `work_cv`: guards the park/notify handshake. The
    /// seq-recheck under this lock is what makes parking race-free.
    idle: Mutex<()>,
    work_cv: Condvar,
    /// Pairs with `done_cv`: wakes a parked submitter when the countdown
    /// hits zero.
    done: Mutex<()>,
    done_cv: Condvar,
}

/// A persistent pool of parked worker threads. Most callers want
/// [`global`]; tests and benchmarks build private pools with
/// [`Pool::new`].
pub struct Pool {
    shared: Arc<Shared>,
    /// Serializes broadcasts: there is one job slot, and the soundness
    /// argument needs "no new job until the previous one fully drained".
    submit: Mutex<()>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for Pool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pool").field("lanes", &self.shared.lanes).finish_non_exhaustive()
    }
}

/// The process-wide pool, created on first use with [`default_lanes`]
/// lanes. Never dropped; its workers park when idle.
pub fn global() -> &'static Pool {
    static GLOBAL: OnceLock<Pool> = OnceLock::new();
    GLOBAL.get_or_init(|| Pool::new(default_lanes()))
}

/// The lane count [`global`] uses: `TESA_THREADS` when it parses to an
/// integer in `[1, 256]` (larger values clamp to 256), otherwise
/// [`std::thread::available_parallelism`].
pub fn default_lanes() -> usize {
    std::env::var("TESA_THREADS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, std::num::NonZero::get))
        .min(MAX_LANES)
}

impl Pool {
    /// A pool with `lanes` total lanes (the calling thread is lane 0, so
    /// this spawns `lanes - 1` worker threads; `lanes` is clamped to
    /// `[1, 256]`). With one lane every entry point runs inline.
    ///
    /// # Panics
    ///
    /// Panics if the OS refuses to spawn a worker thread.
    #[must_use]
    pub fn new(lanes: usize) -> Self {
        let lanes = lanes.clamp(1, MAX_LANES);
        let shared = Arc::new(Shared {
            lanes,
            seq: AtomicU64::new(0),
            job: Mutex::new(None),
            remaining: AtomicUsize::new(0),
            panicked: AtomicBool::new(false),
            shutdown: AtomicBool::new(false),
            idle: Mutex::new(()),
            work_cv: Condvar::new(),
            done: Mutex::new(()),
            done_cv: Condvar::new(),
        });
        let workers = (1..lanes)
            .map(|lane| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("tesa-pool-{lane}"))
                    .spawn(move || worker_loop(&shared, lane))
                    .expect("failed to spawn pool worker thread")
            })
            .collect();
        Self { shared, submit: Mutex::new(()), workers }
    }

    /// Total concurrent lanes, including the submitter's. `1` means the
    /// pool is effectively serial (single-core machine or
    /// `TESA_THREADS=1`).
    #[must_use]
    pub fn lanes(&self) -> usize {
        self.shared.lanes
    }

    /// Runs `f(lane, lanes)` once per lane in `0..lanes`, concurrently,
    /// where `lanes = max_lanes.min(self.lanes()).max(1)`. Returns after
    /// every lane has finished.
    ///
    /// The caller partitions its work by `(lane, lanes)`; for
    /// deterministic results the partition must depend only on the problem
    /// size, never on `lanes` (fixed chunks assigned `lane, lane + lanes,
    /// …` are the usual shape — see the module docs).
    ///
    /// Runs inline on the caller when only one lane is available or when
    /// called from inside another pool job (nested parallelism is serial).
    ///
    /// # Panics
    ///
    /// Re-panics if `f` panicked on any lane; the pool itself survives and
    /// the broadcast still completes on every other lane first.
    pub fn broadcast<F: Fn(usize, usize) + Sync>(&self, max_lanes: usize, f: F) {
        let lanes = max_lanes.min(self.shared.lanes).max(1);
        if lanes == 1 || IN_JOB.with(Cell::get) {
            f(0, 1);
            return;
        }
        let guard = self.submit.lock().expect("pool submit lock poisoned");
        // Erase the closure's lifetime for the job slot. `wrapper` lives
        // until the end of this function; the protocol below guarantees no
        // worker touches the pointer after `remaining` hits zero, which
        // happens before the slot is cleared and the submit lock released.
        let wrapper = |worker_lane: usize| {
            if worker_lane < lanes {
                f(worker_lane, lanes);
            }
        };
        let job = erase(&wrapper);
        self.shared.panicked.store(false, Ordering::Relaxed);
        *self.shared.job.lock().expect("pool job slot poisoned") = Some(job);
        self.shared.remaining.store(self.shared.lanes - 1, Ordering::Relaxed);
        self.shared.seq.fetch_add(1, Ordering::Release);
        {
            // Taking `idle` orders this notify against the workers'
            // check-seq-then-park (both under the same lock), so a worker
            // either sees the new seq or is parked and gets the notify.
            let _idle = self.shared.idle.lock().expect("pool idle lock poisoned");
            self.shared.work_cv.notify_all();
        }

        // The submitter is lane 0.
        IN_JOB.with(|c| c.set(true));
        let mine = panic::catch_unwind(AssertUnwindSafe(|| f(0, lanes)));
        IN_JOB.with(|c| c.set(false));

        // Wait for the countdown: spin (the common case — worker lanes are
        // sized like lane 0's share), then park on `done_cv`.
        let mut spins = 0u32;
        while self.shared.remaining.load(Ordering::Acquire) > 0 {
            if spins < SPIN_ROUNDS {
                spins += 1;
                std::hint::spin_loop();
            } else if spins < SPIN_ROUNDS + YIELD_ROUNDS {
                spins += 1;
                std::thread::yield_now();
            } else {
                let done = self.shared.done.lock().expect("pool done lock poisoned");
                if self.shared.remaining.load(Ordering::Acquire) > 0 {
                    // Workers notify under `done`, so this cannot miss.
                    drop(self.shared.done_cv.wait(done).expect("pool done lock poisoned"));
                }
            }
        }
        *self.shared.job.lock().expect("pool job slot poisoned") = None;
        drop(guard);
        if let Err(payload) = mine {
            panic::resume_unwind(payload);
        }
        assert!(
            !self.shared.panicked.load(Ordering::Acquire),
            "tesa_util::pool: a pool job panicked on a worker thread"
        );
    }

    /// Distributes the `items` of a caller-built partition across up to
    /// `max_lanes` lanes: item `i` is passed to exactly one call
    /// `f(i, item_i)`, and all calls have returned when `scatter` returns.
    ///
    /// This is the safe way to hand out disjoint `&mut` workspace per
    /// lane: split the buffers *before* the call, make each item own its
    /// slices, and let `f` consume them. Item order in `items` is the
    /// caller's chunk order; which lane runs which item is unobservable
    /// as long as `f`'s effect depends only on `(i, item_i)`.
    ///
    /// Runs inline (in index order) when only one lane is available, when
    /// there are fewer than two items, or when nested inside another pool
    /// job — so the call's observable effect never depends on the lane
    /// count.
    ///
    /// # Panics
    ///
    /// Re-panics if `f` panicked for any item (see [`Pool::broadcast`]).
    pub fn scatter<I: Send, F: Fn(usize, I) + Sync>(
        &self,
        max_lanes: usize,
        items: Vec<I>,
        f: F,
    ) {
        let lanes = max_lanes.min(self.shared.lanes).min(items.len()).max(1);
        if lanes == 1 || IN_JOB.with(Cell::get) {
            for (i, item) in items.into_iter().enumerate() {
                f(i, item);
            }
            return;
        }
        let n = items.len();
        let slots: Vec<Mutex<Option<I>>> =
            items.into_iter().map(|item| Mutex::new(Some(item))).collect();
        self.broadcast(lanes, |lane, lanes| {
            let mut i = lane;
            while i < n {
                let item = slots[i].lock().expect("pool scatter slot poisoned").take();
                if let Some(item) = item {
                    f(i, item);
                }
                i += lanes;
            }
        });
    }

    /// Maps `f` over `0..n` with dynamic (work-stealing) scheduling and
    /// returns the results in index order — exactly what a serial
    /// `(0..n).map(f).collect()` would produce. See [`map_dynamic`] (the
    /// same map on the global pool) for when to prefer this over
    /// [`Pool::broadcast`].
    pub fn map_dynamic<T, F>(&self, threads: usize, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        if n == 0 {
            return Vec::new();
        }
        let lanes = threads.clamp(1, n).min(self.shared.lanes);
        if lanes == 1 || IN_JOB.with(Cell::get) {
            return (0..n).map(f).collect();
        }

        // Per-lane deques of index ranges: the owner pops small chunks off
        // the front, a dry lane steals the back half of the fullest
        // victim. Work only shrinks, so "every queue empty" terminates.
        let queues: Vec<Mutex<Range>> =
            (0..lanes).map(|w| Mutex::new((w * n / lanes, (w + 1) * n / lanes))).collect();
        // Front chunks are capped so the tail of a long queue stays
        // stealable: at most 1/16th of an even share per pop, and exactly
        // one item per pop once fewer than ~2 items per lane remain
        // (expensive-item sweeps want maximal granularity).
        let chunk_cap = (n / (16 * lanes)).max(1);
        let parts: Vec<Mutex<Vec<(usize, T)>>> =
            (0..lanes).map(|_| Mutex::new(Vec::new())).collect();
        self.broadcast(lanes, |lane, _| {
            let mut local: Vec<(usize, T)> = Vec::new();
            loop {
                let chunk = match pop_front(&queues[lane], chunk_cap) {
                    Some(c) => c,
                    None => match steal(&queues, lane) {
                        Some(range) => {
                            // Adopt the stolen range so other thieves can
                            // split it further, then pop like any owner.
                            // Our own queue is empty here (only the owner
                            // refills it), so overwriting is safe.
                            *queues[lane].lock().expect("pool queue poisoned") = range;
                            continue;
                        }
                        None => break,
                    },
                };
                for i in chunk.0..chunk.1 {
                    local.push((i, f(i)));
                }
            }
            // One lock per lane per broadcast; a lane that runs again
            // after a steal round-trip appends instead of overwriting.
            parts[lane].lock().expect("pool part poisoned").append(&mut local);
        });

        let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
        for part in &parts {
            for (i, v) in part.lock().expect("pool part poisoned").drain(..) {
                debug_assert!(out[i].is_none(), "index {i} computed twice");
                out[i] = Some(v);
            }
        }
        out.into_iter().map(|v| v.expect("every index computed exactly once")).collect()
    }
}

impl Drop for Pool {
    /// Graceful shutdown: signals the workers, wakes any that are parked,
    /// and joins them. A worker that is mid-job finishes the job first
    /// (broadcasts borrow the pool, so by the time `Drop` can run no
    /// broadcast is in flight — shutdown can only interleave with jobs
    /// *finishing*, never abandon one).
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        {
            let _idle = self.shared.idle.lock().expect("pool idle lock poisoned");
            self.shared.work_cv.notify_all();
        }
        for handle in self.workers.drain(..) {
            drop(handle.join());
        }
    }
}

/// The wait-run loop of one worker thread (lane `lane >= 1`).
fn worker_loop(shared: &Shared, lane: usize) {
    // Start from generation 0, NOT from a fresh `seq` load: a broadcast
    // published before this thread gets scheduled must still be run (its
    // countdown includes us, so the submitter cannot finish — and no
    // further generation can start — until we do).
    let mut seen = 0u64;
    loop {
        // Phase 1: wait for a generation bump (or shutdown). Spin first —
        // back-to-back broadcasts from a CG iteration arrive within
        // microseconds — then yield, then park.
        let mut spins = 0u32;
        loop {
            if shared.shutdown.load(Ordering::Acquire) {
                return;
            }
            let seq = shared.seq.load(Ordering::Acquire);
            if seq != seen {
                seen = seq;
                break;
            }
            if spins < SPIN_ROUNDS {
                spins += 1;
                std::hint::spin_loop();
            } else if spins < SPIN_ROUNDS + YIELD_ROUNDS {
                spins += 1;
                std::thread::yield_now();
            } else {
                let idle = shared.idle.lock().expect("pool idle lock poisoned");
                // Recheck under the lock: the submitter notifies while
                // holding it, so either we see the new seq here or we are
                // parked before the notify fires.
                if shared.seq.load(Ordering::Acquire) == seen
                    && !shared.shutdown.load(Ordering::Acquire)
                {
                    drop(shared.work_cv.wait(idle).expect("pool idle lock poisoned"));
                }
                spins = 0;
            }
        }

        // Phase 2: run the published job for this generation. The slot is
        // always `Some` here — it is cleared only after `remaining` (which
        // includes us) reaches zero.
        let job = *shared.job.lock().expect("pool job slot poisoned");
        if let Some(job) = job {
            run_job(job, lane, shared);
        }
        // Persistent threads never hit the scope-join trace flush; drain
        // the TLS event buffer while the events are still this job's.
        crate::trace::flush_current_thread();
        if shared.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            let _done = shared.done.lock().expect("pool done lock poisoned");
            shared.done_cv.notify_all();
        }
    }
}

/// Dereferences the published job pointer and runs it for `lane`,
/// catching panics into `shared.panicked`.
#[allow(unsafe_code)]
fn run_job(job: JobPtr, lane: usize, shared: &Shared) {
    // SAFETY: the submitter keeps the closure alive until the countdown
    // this lane has not yet decremented reaches zero, and `seq` changes
    // only after a fresh pointer is published — so `job.0` points to the
    // live closure of the current generation (see the module docs).
    let f = unsafe { &*job.0 };
    IN_JOB.with(|c| c.set(true));
    let result = panic::catch_unwind(AssertUnwindSafe(|| f(lane)));
    IN_JOB.with(|c| c.set(false));
    if result.is_err() {
        shared.panicked.store(true, Ordering::Release);
    }
}

/// Per-lane share of an index space: a half-open `[start, end)` range.
/// The owner pops from the front; thieves split off the back.
type Range = (usize, usize);

/// Maps `f` over `0..n` on up to `threads` lanes of the [`global`] pool
/// with dynamic (work-stealing) scheduling; results come back in index
/// order — exactly what a serial `(0..n).map(f).collect()` would produce.
///
/// This is the right entry point for *irregular, coarse* items (a full
/// design evaluation next to a cache hit). For fine-grained numeric
/// kernels with a fixed partition, use [`Pool::broadcast`] /
/// [`Pool::scatter`] directly.
///
/// `threads` is clamped to `[1, n]` and to the pool's lane count; with
/// one lane the map runs inline on the caller with no pool overhead,
/// which keeps single-threaded callers bit-identical and cheap.
///
/// `f` must be safe to call concurrently from multiple threads; items are
/// computed exactly once each.
///
/// ```
/// let squares = tesa_util::pool::map_dynamic(4, 10, |i| i * i);
/// assert_eq!(squares, (0..10).map(|i| i * i).collect::<Vec<_>>());
/// ```
pub fn map_dynamic<T, F>(threads: usize, n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    global().map_dynamic(threads, n, f)
}

/// Runs `f` for every index in `0..n` on up to `threads` lanes of the
/// global pool, discarding the results. Convenience wrapper over
/// [`map_dynamic`] for callers that only want side effects (e.g. warming
/// a shared cache).
pub fn for_each_dynamic<F>(threads: usize, n: usize, f: F)
where
    F: Fn(usize) + Sync,
{
    let _ = map_dynamic(threads, n, f);
}

/// Pops a chunk off the front of `q`, or `None` when the range is empty.
/// Chunks shrink with the remaining work (a quarter, capped by
/// `chunk_cap`) so the tail of a range stays stealable while lock traffic
/// stays low on long runs of cheap items.
fn pop_front(q: &Mutex<Range>, chunk_cap: usize) -> Option<Range> {
    let mut g = q.lock().expect("pool queue poisoned");
    let (start, end) = *g;
    if start >= end {
        return None;
    }
    let take = ((end - start) / 4).clamp(1, chunk_cap);
    g.0 = start + take;
    Some((start, start + take))
}

/// Steals the back half of the fullest victim's range. Locks are taken one
/// queue at a time (never nested), so the scan can race with the victim
/// draining its own queue; a victim found empty on the second look just
/// triggers a rescan. Returns `None` only after a full scan finds every
/// other queue empty.
fn steal(queues: &[Mutex<Range>], thief: usize) -> Option<Range> {
    loop {
        let mut best: Option<(usize, usize)> = None; // (victim, remaining)
        for (v, q) in queues.iter().enumerate() {
            if v == thief {
                continue;
            }
            let g = q.lock().expect("pool queue poisoned");
            let len = g.1.saturating_sub(g.0);
            if len > 0 && best.is_none_or(|(_, bl)| len > bl) {
                best = Some((v, len));
            }
        }
        let (victim, _) = best?;
        let mut g = queues[victim].lock().expect("pool queue poisoned");
        let (start, end) = *g;
        if start >= end {
            continue; // the victim drained it since the scan; rescan
        }
        // Victim keeps the front half, thief takes the back half. With one
        // item left the thief takes it whole (mid == start).
        let mid = start + (end - start) / 2;
        g.1 = mid;
        return Some((mid, end));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn matches_serial_map_in_order() {
        let pool = Pool::new(8);
        let expected: Vec<usize> = (0..1000).map(|i| i * i).collect();
        for threads in [1, 2, 3, 4, 8] {
            assert_eq!(pool.map_dynamic(threads, 1000, |i| i * i), expected, "threads={threads}");
        }
    }

    #[test]
    fn empty_and_tiny_inputs() {
        assert_eq!(map_dynamic(8, 0, |i| i), Vec::<usize>::new());
        assert_eq!(map_dynamic(8, 1, |i| i + 41), vec![41]);
        assert_eq!(map_dynamic(0, 3, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn every_index_runs_exactly_once() {
        let pool = Pool::new(8);
        let n = 4096;
        let counts: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        let out = pool.map_dynamic(8, n, |i| {
            counts[i].fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(out, (0..n).collect::<Vec<_>>());
        assert!(counts.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn imbalanced_costs_still_produce_ordered_results() {
        // Early indices are ~1000x more expensive than late ones — the
        // shape that starves a statically chunked pool. Correctness here
        // exercises the steal path; balance is covered by the benches.
        let pool = Pool::new(8);
        let cost = |i: usize| if i < 8 { 50_000u64 } else { 50 };
        let work = |i: usize| {
            let mut acc = 0u64;
            for k in 0..cost(i) {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k);
            }
            (i as u64) ^ (acc & 1)
        };
        let expected: Vec<u64> = (0..256).map(work).collect();
        assert_eq!(pool.map_dynamic(8, 256, work), expected);
    }

    #[test]
    fn for_each_visits_all_indices() {
        let n = 300;
        let sum = AtomicUsize::new(0);
        for_each_dynamic(4, n, |i| {
            sum.fetch_add(i + 1, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), n * (n + 1) / 2);
    }

    #[test]
    fn broadcast_runs_every_lane_exactly_once() {
        let pool = Pool::new(4);
        for max_lanes in [1, 2, 3, 4, 9] {
            let lanes_expected = max_lanes.clamp(1, 4);
            let hits: Vec<AtomicUsize> =
                (0..lanes_expected).map(|_| AtomicUsize::new(0)).collect();
            pool.broadcast(max_lanes, |lane, lanes| {
                assert_eq!(lanes, lanes_expected);
                hits[lane].fetch_add(1, Ordering::Relaxed);
            });
            assert!(
                hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
                "max_lanes={max_lanes}"
            );
        }
    }

    #[test]
    fn broadcasts_reuse_the_same_workers() {
        // Many back-to-back broadcasts through one pool: exercises the
        // spin → yield → park → wake cycle and the generation stamping.
        let pool = Pool::new(3);
        let total = AtomicUsize::new(0);
        for round in 0..200 {
            pool.broadcast(3, |lane, _| {
                total.fetch_add(round + lane, Ordering::Relaxed);
            });
            if round % 10 == 0 {
                // Let workers reach the parked state sometimes.
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
        }
        let expected: usize = (0..200).map(|r| 3 * r + 3).sum();
        assert_eq!(total.load(Ordering::Relaxed), expected);
    }

    #[test]
    fn nested_broadcast_runs_inline() {
        let pool = Pool::new(4);
        let inner_lanes = Mutex::new(Vec::new());
        pool.broadcast(4, |_, _| {
            pool.broadcast(4, |lane, lanes| {
                assert_eq!(lane, 0);
                inner_lanes.lock().unwrap().push(lanes);
            });
        });
        // Every outer lane ran its nested broadcast inline with 1 lane.
        assert_eq!(*inner_lanes.lock().unwrap(), vec![1, 1, 1, 1]);
    }

    #[test]
    fn nested_map_dynamic_runs_inline_and_complete() {
        let pool = Pool::new(4);
        let outer = pool.map_dynamic(4, 6, |i| {
            let inner = pool.map_dynamic(4, 5, move |j| i * 10 + j);
            inner.iter().sum::<usize>()
        });
        let expected: Vec<usize> =
            (0..6).map(|i| (0..5).map(|j| i * 10 + j).sum()).collect();
        assert_eq!(outer, expected);
    }

    #[test]
    fn scatter_consumes_each_item_exactly_once() {
        let pool = Pool::new(4);
        let n = 37;
        let mut out = vec![0usize; n];
        // Hand each lane a disjoint &mut element — the pattern the thermal
        // kernels use for per-lane workspaces.
        let items: Vec<&mut usize> = out.iter_mut().collect();
        pool.scatter(4, items, |i, slot| *slot = i * i);
        assert_eq!(out, (0..n).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn panic_in_job_propagates_and_pool_survives() {
        let pool = Pool::new(4);
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.broadcast(4, |lane, _| {
                assert!(lane != 2, "lane 2 goes down");
            });
        }));
        assert!(caught.is_err(), "worker panic must propagate to the submitter");
        // The broadcast still completed on every lane; the pool is usable.
        let sum = AtomicUsize::new(0);
        pool.broadcast(4, |lane, _| {
            sum.fetch_add(lane + 1, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 1 + 2 + 3 + 4);
    }

    #[test]
    fn panic_on_submitter_lane_propagates() {
        let pool = Pool::new(2);
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.broadcast(2, |lane, _| assert!(lane != 0, "lane 0 goes down"));
        }));
        assert!(caught.is_err());
        pool.broadcast(2, |_, _| {}); // still alive
    }

    #[test]
    fn shutdown_joins_parked_and_busy_workers() {
        // Parked: workers that never saw a job.
        drop(Pool::new(4));
        // Busy-ish: drop right after heavy use, while workers are still in
        // the spin/yield phase of their wait loop.
        let pool = Pool::new(4);
        for _ in 0..50 {
            pool.broadcast(4, |_, _| {});
        }
        drop(pool);
        // Shutdown during a slow job on another handle: the drop must wait
        // for the job to finish, not abandon it.
        let pool = std::sync::Arc::new(Pool::new(4));
        let flag = std::sync::Arc::new(AtomicUsize::new(0));
        let (p2, f2) = (Arc::clone(&pool), Arc::clone(&flag));
        let submitter = std::thread::spawn(move || {
            p2.broadcast(4, |_, _| {
                std::thread::sleep(std::time::Duration::from_millis(5));
                f2.fetch_add(1, Ordering::Relaxed);
            });
        });
        drop(pool); // may or may not be the last Arc; either way no hang
        submitter.join().unwrap();
        assert_eq!(flag.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn single_lane_pool_runs_inline() {
        let pool = Pool::new(1);
        let count = AtomicUsize::new(0);
        pool.broadcast(8, |lane, lanes| {
            assert_eq!((lane, lanes), (0, 1));
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn default_lanes_is_positive_and_capped() {
        let lanes = default_lanes();
        assert!((1..=MAX_LANES).contains(&lanes));
    }

    #[test]
    fn map_dynamic_matches_serial_prop() {
        // Propcheck: random (n, threads, cost skew) — pool output must be
        // identical to the serial map.
        use crate::propcheck::{check, ranged, Config};
        let pool = Pool::new(6);
        check(
            Config::with_cases(40),
            (ranged(0usize..200), ranged(1usize..10), ranged(1u64..1000)),
            |(n, threads, skew)| {
                let work = move |i: usize| {
                    let mut acc = skew;
                    for k in 0..(i % 7) * (skew as usize % 13) {
                        acc = acc.wrapping_mul(0x9E37_79B9).wrapping_add(k as u64);
                    }
                    acc.wrapping_add(i as u64)
                };
                let expected: Vec<u64> = (0..n).map(work).collect();
                if pool.map_dynamic(threads, n, work) == expected {
                    Ok(())
                } else {
                    Err(format!("pool map diverged from serial at n={n} threads={threads}"))
                }
            },
        );
    }
}
