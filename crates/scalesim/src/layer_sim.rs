//! Closed-form single-layer simulation: fold arithmetic, SRAM traffic, and
//! double-buffered DRAM tiling.

use crate::config::{ArrayConfig, Dataflow, SramCapacities};
use crate::report::{LayerReport, OperandTraffic};
use tesa_workloads::Layer;

/// How a GEMM maps onto the array for one dataflow: `sr` spatial rows,
/// `sc` spatial columns, `t` temporal steps per fold, and how many
/// reduction folds (`k` split across the spatial row dimension) produce
/// partial sums.
struct Mapping {
    sr: u64,
    sc: u64,
    t: u64,
    reduction_folds: u64,
}

fn map_gemm(m: u64, k: u64, n: u64, array: ArrayConfig, dataflow: Dataflow) -> Mapping {
    let rows = u64::from(array.rows);
    match dataflow {
        // Weights pinned: k on rows, m on cols, ofmap pixels stream.
        Dataflow::WeightStationary => {
            Mapping { sr: k, sc: m, t: n, reduction_folds: k.div_ceil(rows) }
        }
        // Outputs pinned: n on rows, m on cols, reduction streams (no
        // partial-sum spills by construction).
        Dataflow::OutputStationary => Mapping { sr: n, sc: m, t: k, reduction_folds: 1 },
        // Inputs pinned: k on rows, n on cols, filters stream.
        Dataflow::InputStationary => {
            Mapping { sr: k, sc: n, t: m, reduction_folds: k.div_ceil(rows) }
        }
    }
}

/// Fold categories along one array dimension: `(size, count)` pairs for
/// full folds and the single partial edge fold (if any).
fn folds(spatial: u64, dim: u64) -> [(u64, u64); 2] {
    let full = spatial / dim;
    let rem = spatial % dim;
    [(dim, full), (rem, u64::from(rem > 0))]
}

/// Stall-free cycles summed over all folds.
///
/// Each `ru x cu` fold streaming `t` temporal steps costs
/// `2*ru + cu + t - 2` cycles: `ru` cycles to stage the stationary operand,
/// `t` streaming cycles, and `ru + cu - 2` of pipeline fill/drain skew —
/// the standard SCALE-Sim fold cost.
fn total_cycles(mapping: &Mapping, array: ArrayConfig) -> u64 {
    let mut cycles = 0u64;
    for &(ru, nr) in &folds(mapping.sr, u64::from(array.rows)) {
        for &(cu, nc) in &folds(mapping.sc, u64::from(array.cols)) {
            if nr == 0 || nc == 0 || ru == 0 || cu == 0 {
                continue;
            }
            cycles += nr * nc * (2 * ru + cu + mapping.t - 2);
        }
    }
    cycles
}

/// SRAM accesses (bytes, int8) per operand for the whole layer.
///
/// Derived by summing per-fold access counts in closed form; see the
/// dataflow arms for the loop-nest each expression encodes.
fn sram_traffic(m: u64, k: u64, n: u64, array: ArrayConfig, dataflow: Dataflow) -> OperandTraffic {
    let rows = u64::from(array.rows);
    let cols = u64::from(array.cols);
    match dataflow {
        Dataflow::WeightStationary => {
            let col_folds = m.div_ceil(cols);
            let red_folds = k.div_ceil(rows);
            OperandTraffic {
                // IFMAP re-streamed once per column fold.
                ifmap: k * n * col_folds,
                // Every weight staged exactly once.
                filter: k * m,
                // OFMAP written once per reduction fold and read back for
                // accumulation on all but the first.
                ofmap: m * n * (2 * red_folds - 1),
            }
        }
        Dataflow::OutputStationary => OperandTraffic {
            // IFMAP re-streamed once per column fold; filters once per row
            // fold; outputs drained exactly once.
            ifmap: n * k * m.div_ceil(cols),
            filter: m * k * n.div_ceil(rows),
            ofmap: m * n,
        },
        Dataflow::InputStationary => {
            let col_folds = n.div_ceil(cols);
            let red_folds = k.div_ceil(rows);
            OperandTraffic {
                // Every input staged exactly once.
                ifmap: k * n,
                // Filters re-streamed once per column fold.
                filter: k * m * col_folds,
                ofmap: m * n * (2 * red_folds - 1),
            }
        }
    }
}

/// DRAM traffic (bytes) under double-buffered operand tiling.
///
/// Half of each SRAM holds live data while the other half prefetches, so
/// the usable tile is `capacity / 2`. Two loop orders are considered —
/// filter-tile-outer (re-stream IFMAP per filter tile) and
/// ifmap-tile-outer (re-stream FILTER per ifmap tile) — and the cheaper one
/// is chosen, which is what a tiling compiler would do. Partial sums spill
/// to DRAM only when the OFMAP working set exceeds its SRAM *and* the
/// reduction dimension is folded.
fn dram_traffic(
    layer: &Layer,
    srams: SramCapacities,
    reduction_folds: u64,
) -> OperandTraffic {
    let i = layer.ifmap_bytes();
    let f = layer.filter_bytes();
    let o = layer.ofmap_bytes();
    let usable_i = (srams.ifmap_bytes / 2).max(1);
    let usable_f = (srams.filter_bytes / 2).max(1);
    let usable_o = (srams.ofmap_bytes / 2).max(1);

    let f_tiles = f.div_ceil(usable_f);
    let i_tiles = i.div_ceil(usable_i);

    // Strategy A: filter tiles outer; IFMAP re-fetched per filter tile
    // unless it is fully resident.
    let a_ifmap = if i <= usable_i { i } else { i * f_tiles };
    let a = (a_ifmap, f);
    // Strategy B: ifmap tiles outer; FILTER re-fetched per ifmap tile
    // unless fully resident.
    let b_filter = if f <= usable_f { f } else { f * i_tiles };
    let b = (i, b_filter);

    let (ifmap, filter) = if a.0 + a.1 <= b.0 + b.1 { a } else { b };

    let ofmap = if o <= usable_o || reduction_folds <= 1 {
        o
    } else {
        // Each extra reduction fold writes partials out and reads them back.
        o + 2 * o * (reduction_folds - 1)
    };

    OperandTraffic { ifmap, filter, ofmap }
}

/// Simulates one layer on one accelerator configuration.
///
/// Returns stall-free cycles, utilization, SRAM and DRAM byte counts.
/// This is the analytical equivalent of one SCALE-Sim layer run.
///
/// # Examples
///
/// ```
/// use tesa_scalesim::{simulate_layer, ArrayConfig, Dataflow, SramCapacities};
/// use tesa_workloads::{Layer, LayerKind};
///
/// let layer = Layer::new(
///     "conv",
///     LayerKind::Conv { ih: 56, iw: 56, ic: 64, kh: 3, kw: 3, oc: 64, stride: 1, pad: 1 },
/// );
/// let report = simulate_layer(
///     &layer,
///     ArrayConfig::square(64),
///     SramCapacities::uniform_kib(256),
///     Dataflow::WeightStationary,
/// );
/// assert_eq!(report.macs, layer.macs());
/// assert!(report.utilization > 0.5, "large conv should use the array well");
/// ```
pub fn simulate_layer(
    layer: &Layer,
    array: ArrayConfig,
    srams: SramCapacities,
    dataflow: Dataflow,
) -> LayerReport {
    let (m, k, n) = layer.gemm_dims();
    let mapping = map_gemm(m, k, n, array, dataflow);
    let cycles = total_cycles(&mapping, array);
    let macs = m * k * n;
    let utilization = macs as f64 / (array.num_pes() * cycles.max(1)) as f64;
    LayerReport {
        name: layer.name().to_owned(),
        cycles,
        utilization,
        macs,
        sram_traffic: sram_traffic(m, k, n, array, dataflow),
        dram_traffic: dram_traffic(layer, srams, mapping.reduction_folds),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tesa_util::propcheck::{check, ranged, Config};
    use tesa_util::{prop_assert, prop_assert_eq};
    use tesa_workloads::LayerKind;

    fn conv_layer(ih: u32, ic: u32, k: u32, oc: u32) -> Layer {
        Layer::new(
            "t",
            LayerKind::Conv { ih, iw: ih, ic, kh: k, kw: k, oc, stride: 1, pad: k / 2 },
        )
    }

    fn big_sram() -> SramCapacities {
        SramCapacities::uniform_kib(1024 * 1024) // effectively infinite
    }

    #[test]
    fn single_fold_cycle_count_matches_hand_calc() {
        // GEMM 8x8x8 on a 16x16 array, WS: one fold, ru=8 (k), cu=8 (m),
        // t=8 (n): cycles = 2*8 + 8 + 8 - 2 = 30.
        let layer = Layer::new("g", LayerKind::Gemm { m: 8, k: 8, n: 8 });
        let r = simulate_layer(&layer, ArrayConfig::square(16), big_sram(), Dataflow::WeightStationary);
        assert_eq!(r.cycles, 30);
        assert_eq!(r.macs, 512);
    }

    #[test]
    fn fold_count_scales_cycles() {
        // k=32 on a 16-row array -> 2 row folds; m=16, n=100.
        let layer = Layer::new("g", LayerKind::Gemm { m: 16, k: 32, n: 100 });
        let r = simulate_layer(&layer, ArrayConfig::square(16), big_sram(), Dataflow::WeightStationary);
        // Each fold: 2*16 + 16 + 100 - 2 = 146; two folds.
        assert_eq!(r.cycles, 292);
    }

    #[test]
    fn partial_fold_uses_fewer_cycles() {
        // k=20 on 16 rows -> one full fold (ru=16) + one partial (ru=4).
        let layer = Layer::new("g", LayerKind::Gemm { m: 16, k: 20, n: 100 });
        let r = simulate_layer(&layer, ArrayConfig::square(16), big_sram(), Dataflow::WeightStationary);
        let full = 2 * 16 + 16 + 100 - 2;
        let partial = 2 * 4 + 16 + 100 - 2;
        assert_eq!(r.cycles, full + partial);
    }

    #[test]
    fn utilization_upper_bounded_by_one() {
        for dim in [16u32, 64, 256] {
            let layer = conv_layer(56, 256, 3, 256);
            for df in [Dataflow::WeightStationary, Dataflow::OutputStationary, Dataflow::InputStationary] {
                let r = simulate_layer(&layer, ArrayConfig::square(dim), big_sram(), df);
                assert!(r.utilization > 0.0 && r.utilization <= 1.0, "{df} dim {dim}: {}", r.utilization);
            }
        }
    }

    #[test]
    fn ws_filter_sram_traffic_equals_weights() {
        let layer = conv_layer(28, 128, 3, 256);
        let r = simulate_layer(&layer, ArrayConfig::square(32), big_sram(), Dataflow::WeightStationary);
        assert_eq!(r.sram_traffic.filter, layer.filter_bytes());
    }

    #[test]
    fn is_ifmap_sram_traffic_equals_inputs_staged_once() {
        let layer = Layer::new("g", LayerKind::Gemm { m: 64, k: 96, n: 48 });
        let r = simulate_layer(&layer, ArrayConfig::square(32), big_sram(), Dataflow::InputStationary);
        // IS stages each of the k*n input elements exactly once.
        assert_eq!(r.sram_traffic.ifmap, 96 * 48);
    }

    #[test]
    fn os_has_no_partial_sum_traffic() {
        let layer = Layer::new("g", LayerKind::Gemm { m: 64, k: 4096, n: 64 });
        let r = simulate_layer(&layer, ArrayConfig::square(32), big_sram(), Dataflow::OutputStationary);
        assert_eq!(r.sram_traffic.ofmap, 64 * 64);
        assert_eq!(r.dram_traffic.ofmap, 64 * 64);
    }

    #[test]
    fn everything_resident_means_compulsory_dram_traffic_only() {
        let layer = conv_layer(28, 64, 3, 64);
        let r = simulate_layer(&layer, ArrayConfig::square(64), big_sram(), Dataflow::WeightStationary);
        assert_eq!(r.dram_traffic.ifmap, layer.ifmap_bytes());
        assert_eq!(r.dram_traffic.filter, layer.filter_bytes());
        assert_eq!(r.dram_traffic.ofmap, layer.ofmap_bytes());
    }

    #[test]
    fn small_sram_multiplies_dram_traffic() {
        let layer = conv_layer(56, 256, 3, 512); // F = 1.18 MB, I = 0.8 MB
        let small = simulate_layer(&layer, ArrayConfig::square(64), SramCapacities::uniform_kib(32), Dataflow::WeightStationary);
        let large = simulate_layer(&layer, ArrayConfig::square(64), SramCapacities::uniform_kib(4096), Dataflow::WeightStationary);
        assert!(small.dram_traffic.total() > 2 * large.dram_traffic.total());
    }

    #[test]
    fn dram_tiling_picks_cheaper_loop_order() {
        // Tiny filter, huge ifmap: keeping the filter resident must win,
        // so ifmap is fetched exactly once.
        let layer = conv_layer(224, 3, 3, 8);
        let r = simulate_layer(&layer, ArrayConfig::square(16), SramCapacities::uniform_kib(8), Dataflow::WeightStationary);
        assert_eq!(r.dram_traffic.ifmap, layer.ifmap_bytes());
    }

    #[test]
    fn macs_invariant_across_dataflows() {
        check(
            Config::with_cases(64),
            (ranged(1u32..512), ranged(1u32..512), ranged(1u32..512), ranged(4u32..8)),
            |(m, k, n, dim_pow)| {
                let layer = Layer::new("g", LayerKind::Gemm { m, k, n });
                let array = ArrayConfig::square(1 << dim_pow);
                for df in [
                    Dataflow::WeightStationary,
                    Dataflow::OutputStationary,
                    Dataflow::InputStationary,
                ] {
                    let r = simulate_layer(&layer, array, big_sram(), df);
                    prop_assert_eq!(r.macs, u64::from(m) * u64::from(k) * u64::from(n));
                    prop_assert!(r.utilization <= 1.0 + 1e-12);
                    prop_assert!(r.cycles > 0);
                }
                Ok(())
            },
        );
    }

    #[test]
    fn bigger_array_never_slower() {
        check(
            Config::with_cases(64),
            (ranged(1u32..512), ranged(1u32..512), ranged(1u32..2048)),
            |(m, k, n)| {
                let layer = Layer::new("g", LayerKind::Gemm { m, k, n });
                let small = simulate_layer(
                    &layer,
                    ArrayConfig::square(32),
                    big_sram(),
                    Dataflow::WeightStationary,
                );
                let large = simulate_layer(
                    &layer,
                    ArrayConfig::square(128),
                    big_sram(),
                    Dataflow::WeightStationary,
                );
                prop_assert!(large.cycles <= small.cycles);
                Ok(())
            },
        );
    }

    #[test]
    fn bigger_sram_never_more_dram_traffic() {
        check(
            Config::with_cases(64),
            (
                ranged(1u32..256),
                ranged(1u32..256),
                ranged(1u32..256),
                ranged(2u64..64),
                ranged(2u64..64),
            ),
            |(m, k, n, kib_small, factor)| {
                let layer = Layer::new("g", LayerKind::Gemm { m, k, n });
                let array = ArrayConfig::square(64);
                let a = simulate_layer(
                    &layer,
                    array,
                    SramCapacities::uniform_kib(kib_small),
                    Dataflow::WeightStationary,
                );
                let b = simulate_layer(
                    &layer,
                    array,
                    SramCapacities::uniform_kib(kib_small * factor),
                    Dataflow::WeightStationary,
                );
                prop_assert!(b.dram_traffic.total() <= a.dram_traffic.total());
                Ok(())
            },
        );
    }

    #[test]
    fn dram_traffic_at_least_compulsory() {
        check(
            Config::with_cases(64),
            (ranged(1u32..256), ranged(1u32..256), ranged(1u32..256), ranged(2u64..4096)),
            |(m, k, n, kib)| {
                let layer = Layer::new("g", LayerKind::Gemm { m, k, n });
                let r = simulate_layer(
                    &layer,
                    ArrayConfig::square(64),
                    SramCapacities::uniform_kib(kib),
                    Dataflow::WeightStationary,
                );
                prop_assert!(r.dram_traffic.ifmap >= layer.ifmap_bytes());
                prop_assert!(r.dram_traffic.filter >= layer.filter_bytes());
                prop_assert!(r.dram_traffic.ofmap >= layer.ofmap_bytes());
                Ok(())
            },
        );
    }
}

#[cfg(test)]
mod edge_case_tests {
    use super::*;
    use tesa_workloads::LayerKind;

    fn gemm(m: u32, k: u32, n: u32) -> Layer {
        Layer::new("g", LayerKind::Gemm { m, k, n })
    }

    fn big_sram() -> SramCapacities {
        SramCapacities::uniform_kib(1024 * 1024)
    }

    #[test]
    fn unit_gemm_on_any_array() {
        // A 1x1x1 GEMM: one fold of (1,1) with t=1 -> 2+1+1-2 = 2 cycles.
        for dim in [1u32, 16, 256] {
            let r = simulate_layer(&gemm(1, 1, 1), ArrayConfig::square(dim), big_sram(), Dataflow::WeightStationary);
            assert_eq!(r.cycles, 2, "dim {dim}");
            assert_eq!(r.macs, 1);
        }
    }

    #[test]
    fn single_row_array_degenerates_gracefully() {
        let array = ArrayConfig { rows: 1, cols: 8 };
        let r = simulate_layer(&gemm(8, 4, 10), array, big_sram(), Dataflow::WeightStationary);
        // k=4 on 1 row -> 4 reduction folds; cycles = 4 * (2*1 + 8 + 10 - 2).
        assert_eq!(r.cycles, 4 * 18);
        assert_eq!(r.macs, 8 * 4 * 10);
    }

    #[test]
    fn fc_layer_uses_one_column_under_ws() {
        // FC at batch 1: n=1 -> at most one column of the ofmap dimension
        // is active per fold; utilization collapses on wide arrays.
        let fc = Layer::new("fc", LayerKind::Fc { in_features: 2048, out_features: 1000 });
        let small = simulate_layer(&fc, ArrayConfig::square(32), big_sram(), Dataflow::OutputStationary);
        let large = simulate_layer(&fc, ArrayConfig::square(256), big_sram(), Dataflow::OutputStationary);
        assert!(large.utilization < small.utilization);
    }

    #[test]
    fn reduction_fold_partial_sum_costs_are_visible() {
        // Same GEMM, k exactly fills the rows vs. k one over: the second
        // needs a reduction fold and pays OFMAP read-modify-write traffic.
        let exact = simulate_layer(&gemm(32, 64, 50), ArrayConfig::square(64), big_sram(), Dataflow::WeightStationary);
        let spill = simulate_layer(&gemm(32, 65, 50), ArrayConfig::square(64), big_sram(), Dataflow::WeightStationary);
        assert_eq!(exact.sram_traffic.ofmap, 32 * 50);
        assert_eq!(spill.sram_traffic.ofmap, 32 * 50 * 3, "write + read + write");
    }

    #[test]
    fn dram_ofmap_spill_requires_both_conditions() {
        // Large OFMAP alone (no reduction folds) does not spill partials.
        let srams = SramCapacities { ifmap_bytes: 1 << 30, filter_bytes: 1 << 30, ofmap_bytes: 1024 };
        let r = simulate_layer(&gemm(64, 8, 1000), ArrayConfig::square(64), srams, Dataflow::WeightStationary);
        assert_eq!(r.dram_traffic.ofmap, 64 * 1000, "single pass writes once");
        // Reduction folds + tiny OFMAP SRAM -> spill traffic appears.
        let spilled = simulate_layer(&gemm(64, 1000, 1000), ArrayConfig::square(64), srams, Dataflow::WeightStationary);
        assert!(spilled.dram_traffic.ofmap > 64 * 1000);
    }

    #[test]
    fn utilization_is_exact_for_perfectly_tiled_gemm() {
        // m, k multiples of the array; utilization = t / (2R + C + t - 2)
        // per fold, aggregated — check against the closed form.
        let (dim, t) = (64u32, 1000u64);
        let r = simulate_layer(&gemm(64, 64, 1000), ArrayConfig::square(dim), big_sram(), Dataflow::WeightStationary);
        let cycles_per_fold = 2 * u64::from(dim) + u64::from(dim) + t - 2;
        assert_eq!(r.cycles, cycles_per_fold);
        let expected_util = (64.0 * 64.0 * t as f64) / ((dim as f64 * dim as f64) * cycles_per_fold as f64);
        assert!((r.utilization - expected_util).abs() < 1e-12);
    }

    #[test]
    fn dataflows_rank_traffic_by_stationarity() {
        // For a k-heavy GEMM, WS keeps filters cheapest in SRAM traffic;
        // IS keeps inputs cheapest.
        let layer = gemm(256, 4096, 64);
        let array = ArrayConfig::square(64);
        let ws = simulate_layer(&layer, array, big_sram(), Dataflow::WeightStationary);
        let is_ = simulate_layer(&layer, array, big_sram(), Dataflow::InputStationary);
        assert_eq!(ws.sram_traffic.filter, layer.filter_bytes());
        assert_eq!(is_.sram_traffic.ifmap, layer.ifmap_bytes());
        assert!(is_.sram_traffic.filter >= ws.sram_traffic.filter);
    }
}
