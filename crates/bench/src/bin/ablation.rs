//! Ablation studies of TESA's design choices (DESIGN.md experiment E-abl):
//!
//! 1. **Scheduler policy** — corner-first power-aware (Sec. III-C) vs. a
//!    naive round-robin baseline: effect on peak temperature and latency.
//! 2. **Leakage model** — exponential vs. linear vs. disabled: how much
//!    each under-estimates the true (exponential) temperature and which
//!    feasibility verdicts flip. This quantifies the paper's critique of
//!    W1/W2's leakage treatment.
//! 3. **ICS knob** — peak temperature vs. spacing at fixed architecture:
//!    the lateral-coupling headroom the optimizer exploits (Fig. 1's
//!    motivation).

use tesa::design::{ChipletConfig, Integration, McmDesign};
use tesa::eval::{EvalOptions, Evaluator};
use tesa::power::LeakageModel;
use tesa::report::Table;
use tesa::sched::SchedulerPolicy;
use tesa::Constraints;
use tesa_workloads::arvr_suite;

fn design(dim: u32, kib: u64, integration: Integration, ics: u32, mhz: u32) -> McmDesign {
    McmDesign {
        chiplet: ChipletConfig { array_dim: dim, sram_kib_per_bank: kib, integration },
        ics_um: ics,
        freq_mhz: mhz,
    }
}

fn main() {
    let workload = arvr_suite();
    let constraints = Constraints::edge_device(30.0, 75.0);

    // --- 1. Scheduler policy ---
    println!("== ablation 1: scheduler policy (corner-first vs naive round-robin) ==\n");
    let mut table = Table::new(vec!["design", "policy", "peak temp", "fps", "worst-phase W"]);
    for (dim, kib, integ, ics, mhz) in [
        (200u32, 1024u64, Integration::TwoD, 500u32, 400u32),
        (160, 512, Integration::ThreeD, 800, 400),
        (180, 512, Integration::TwoD, 1000, 500),
    ] {
        let d = design(dim, kib, integ, ics, mhz);
        for (name, policy) in [
            ("corner-first", SchedulerPolicy::CornerFirstPowerAware),
            ("naive RR", SchedulerPolicy::NaiveRoundRobin),
        ] {
            let e = Evaluator::new(
                workload.clone(),
                EvalOptions { scheduler: policy, ..EvalOptions::default() },
            );
            let eval = e.evaluate(&d, &constraints);
            table.row(vec![
                d.chiplet.to_string(),
                name.into(),
                format!("{:.2} C", eval.peak_temp_c),
                format!("{:.1}", eval.achieved_fps),
                format!("{:.2}", eval.chip_power_w),
            ]);
        }
    }
    println!("{table}");

    // --- 2. Leakage model ---
    println!("== ablation 2: leakage model (what W1/W2-style models miss) ==\n");
    let mut table = Table::new(vec![
        "design",
        "exp (truth)",
        "linear believes",
        "disabled believes",
        "underestimate",
    ]);
    for (dim, kib, integ, mhz) in [
        (200u32, 1024u64, Integration::TwoD, 500u32),
        (196, 1024, Integration::ThreeD, 400),
        (216, 1024, Integration::ThreeD, 500),
    ] {
        let d = design(dim, kib, integ, 700, mhz);
        let peak = |model: LeakageModel| {
            let e = Evaluator::new(
                workload.clone(),
                EvalOptions { leakage: model, ..EvalOptions::default() },
            );
            let eval = e.evaluate(&d, &constraints);
            if eval.thermal_runaway { f64::INFINITY } else { eval.peak_temp_c }
        };
        let exp = peak(LeakageModel::Exponential);
        let lin = peak(LeakageModel::Linear);
        let none = peak(LeakageModel::Disabled);
        table.row(vec![
            d.chiplet.to_string(),
            if exp.is_finite() { format!("{exp:.2} C") } else { "RUNAWAY".into() },
            format!("{lin:.2} C"),
            format!("{none:.2} C"),
            if exp.is_finite() {
                format!("{:.2} K / {:.2} K", exp - lin, exp - none)
            } else {
                "missed a runaway".into()
            },
        ]);
    }
    println!("{table}");

    // --- 3. ICS sweep ---
    println!("== ablation 3: peak temperature vs ICS (2D, 200x200/3072 KB, 400 MHz) ==\n");
    let e = Evaluator::new(workload, EvalOptions::default());
    let mut table = Table::new(vec!["ICS (um)", "mesh", "peak temp", "delta vs ICS=0"]);
    let mut base = None;
    for ics in (0..=1000).step_by(250) {
        let d = design(200, 1024, Integration::TwoD, ics, 400);
        let eval = e.evaluate(&d, &constraints);
        let t = eval.peak_temp_c;
        let b = *base.get_or_insert(t);
        table.row(vec![
            ics.to_string(),
            eval.mesh.map_or("-".into(), |m| m.to_string()),
            format!("{t:.2} C"),
            format!("{:+.2} K", t - b),
        ]);
    }
    println!("{table}");
    println!("(same-mesh rows isolate pure lateral-coupling relief; mesh changes also shift power)");
}
