//! Mesh estimation and floorplanning: how many chiplets fit the interposer
//! at a given chiplet size and ICS, where they sit, and in which order the
//! scheduler should fill them (corner-first).
//!
//! Matching the paper's methodology, the optimizer fills the interposer
//! uniformly with chiplets in a dense mesh; the mesh estimator derives the
//! densest `rows x cols` grid that fits, capped at the number of DNNs in
//! the workload to avoid over-provisioning.

use crate::design::ChipletGeometry;
use tesa_thermal::Rect;

/// A chiplet mesh: `rows x cols` grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Mesh {
    /// Grid rows.
    pub rows: u32,
    /// Grid columns.
    pub cols: u32,
}

impl Mesh {
    /// Number of chiplets in the mesh.
    pub fn count(&self) -> u32 {
        self.rows * self.cols
    }
}

impl std::fmt::Display for Mesh {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}x{}", self.rows, self.cols)
    }
}

/// A placed MCM: the mesh plus chiplet rectangles on the interposer.
#[derive(Debug, Clone, PartialEq)]
pub struct McmLayout {
    /// The chiplet grid.
    pub mesh: Mesh,
    /// Interposer width, mm.
    pub interposer_w_mm: f64,
    /// Interposer height, mm.
    pub interposer_h_mm: f64,
    /// Chiplet footprint side, mm.
    pub chiplet_side_mm: f64,
    /// Inter-chiplet spacing, mm.
    pub ics_mm: f64,
    /// Chiplet footprints in meters (thermal-model coordinates), row-major
    /// from the bottom-left of the mesh.
    pub positions_m: Vec<Rect>,
}

impl McmLayout {
    /// Indices of [`McmLayout::positions_m`] in the scheduler's fill order:
    /// corner cells first, then the remaining edge cells, then interior
    /// cells; within each class, farther from the mesh center first. This
    /// is the paper's hot-spot-avoiding placement policy (Sec. III-C).
    pub fn corner_first_order(&self) -> Vec<usize> {
        let (rows, cols) = (self.mesh.rows as usize, self.mesh.cols as usize);
        let mut idx: Vec<usize> = (0..rows * cols).collect();
        let class = |i: usize| -> u32 {
            let (r, c) = (i / cols, i % cols);
            let edge_r = r == 0 || r + 1 == rows;
            let edge_c = c == 0 || c + 1 == cols;
            match (edge_r, edge_c) {
                (true, true) => 0,  // corner
                (true, false) | (false, true) => 1, // edge
                (false, false) => 2, // interior
            }
        };
        let center_dist2 = |i: usize| -> f64 {
            let (r, c) = ((i / cols) as f64, (i % cols) as f64);
            let (cr, cc) = ((rows as f64 - 1.0) / 2.0, (cols as f64 - 1.0) / 2.0);
            (r - cr).powi(2) + (c - cc).powi(2)
        };
        idx.sort_by(|&a, &b| {
            class(a)
                .cmp(&class(b))
                .then(center_dist2(b).partial_cmp(&center_dist2(a)).expect("finite"))
                .then(a.cmp(&b))
        });
        idx
    }

    /// The region of chiplet `i`'s footprint occupied by the systolic
    /// array (2D integration: array and SRAMs share the tier side by side;
    /// the array takes the left portion in proportion to its area).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn array_region_2d(&self, i: usize, geometry: &ChipletGeometry) -> Rect {
        let r = self.positions_m[i];
        let frac = geometry.array_area_mm2 / geometry.footprint_mm2;
        Rect::new(r.x, r.y, r.w * frac, r.h)
    }

    /// The SRAM region of chiplet `i` (2D integration, right portion).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn sram_region_2d(&self, i: usize, geometry: &ChipletGeometry) -> Rect {
        let r = self.positions_m[i];
        let frac = geometry.array_area_mm2 / geometry.footprint_mm2;
        Rect::new(r.x + r.w * frac, r.y, r.w * (1.0 - frac), r.h)
    }
}

/// Derives the densest mesh of square chiplets (side `chiplet_side_mm`)
/// that fits a `w x h` mm interposer at spacing `ics_mm`, capped at
/// `max_chiplets`. Returns `None` when not even one chiplet fits — an
/// interposer-area violation.
pub fn estimate_mesh(
    chiplet_side_mm: f64,
    ics_mm: f64,
    interposer_w_mm: f64,
    interposer_h_mm: f64,
    max_chiplets: u32,
) -> Option<McmLayout> {
    assert!(chiplet_side_mm > 0.0, "chiplet side must be positive");
    assert!(ics_mm >= 0.0, "ICS cannot be negative");
    assert!(max_chiplets > 0, "the chiplet cap must be positive");
    // n chiplets fit along an axis of length L when
    // n*side + (n-1)*ics <= L (with a tiny tolerance for float noise).
    let fit = |len: f64| -> u32 {
        let n = ((len + ics_mm) / (chiplet_side_mm + ics_mm) + 1e-9).floor();
        n.max(0.0) as u32
    };
    let cols_fit = fit(interposer_w_mm);
    let rows_fit = fit(interposer_h_mm);
    if cols_fit == 0 || rows_fit == 0 {
        return None;
    }
    // Densest mesh under the cap; ties prefer square-ish, then wide.
    let mut best: Option<Mesh> = None;
    for rows in 1..=rows_fit {
        for cols in 1..=cols_fit {
            if rows * cols > max_chiplets {
                continue;
            }
            let candidate = Mesh { rows, cols };
            let better = match best {
                None => true,
                Some(b) => {
                    let (cn, bn) = (candidate.count(), b.count());
                    cn > bn
                        || (cn == bn
                            && candidate.rows.abs_diff(candidate.cols) < b.rows.abs_diff(b.cols))
                        || (cn == bn
                            && candidate.rows.abs_diff(candidate.cols) == b.rows.abs_diff(b.cols)
                            && candidate.cols > b.cols)
                }
            };
            if better {
                best = Some(candidate);
            }
        }
    }
    let mesh = best?;
    let total_w = f64::from(mesh.cols) * chiplet_side_mm + f64::from(mesh.cols - 1) * ics_mm;
    let total_h = f64::from(mesh.rows) * chiplet_side_mm + f64::from(mesh.rows - 1) * ics_mm;
    let x0 = (interposer_w_mm - total_w) / 2.0;
    let y0 = (interposer_h_mm - total_h) / 2.0;
    let side_m = chiplet_side_mm * 1e-3;
    let mut positions = Vec::with_capacity(mesh.count() as usize);
    for r in 0..mesh.rows {
        for c in 0..mesh.cols {
            positions.push(Rect::new(
                (x0 + f64::from(c) * (chiplet_side_mm + ics_mm)) * 1e-3,
                (y0 + f64::from(r) * (chiplet_side_mm + ics_mm)) * 1e-3,
                side_m,
                side_m,
            ));
        }
    }
    Some(McmLayout {
        mesh,
        interposer_w_mm,
        interposer_h_mm,
        chiplet_side_mm,
        ics_mm,
        positions_m: positions,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oversized_chiplet_is_area_violation() {
        assert!(estimate_mesh(9.0, 0.0, 8.0, 8.0, 6).is_none());
    }

    #[test]
    fn single_chiplet_centers() {
        let l = estimate_mesh(4.0, 0.5, 8.0, 8.0, 1).expect("fits");
        assert_eq!(l.mesh, Mesh { rows: 1, cols: 1 });
        let r = l.positions_m[0];
        assert!((r.x - 2.0e-3).abs() < 1e-12 && (r.y - 2.0e-3).abs() < 1e-12);
    }

    #[test]
    fn cap_limits_the_mesh() {
        // 2 mm chiplets at zero ICS: 4x4 = 16 would fit, but the cap is 6,
        // and the squarest 6-chiplet mesh is 2x3 (wide preferred).
        let l = estimate_mesh(2.0, 0.0, 8.0, 8.0, 6).expect("fits");
        assert_eq!(l.mesh.count(), 6);
        assert_eq!((l.mesh.rows, l.mesh.cols), (2, 3));
    }

    #[test]
    fn ics_reduces_fit() {
        // 2.4 mm chiplets: 3 fit per axis only when ICS is small.
        let tight = estimate_mesh(2.4, 0.1, 8.0, 8.0, 9).expect("fits");
        let wide = estimate_mesh(2.4, 1.0, 8.0, 8.0, 9).expect("fits");
        assert_eq!((tight.mesh.rows, tight.mesh.cols), (3, 3));
        assert_eq!((wide.mesh.rows, wide.mesh.cols), (2, 2));
    }

    #[test]
    fn exact_fit_boundary() {
        // 3 chiplets of 2 mm at 1 mm ICS = exactly 8 mm.
        let l = estimate_mesh(2.0, 1.0, 8.0, 8.0, 9).expect("fits");
        assert_eq!((l.mesh.rows, l.mesh.cols), (3, 3));
    }

    #[test]
    fn positions_stay_on_the_interposer() {
        let l = estimate_mesh(2.4, 0.8, 8.0, 8.0, 6).expect("fits");
        for r in &l.positions_m {
            assert!(r.x >= -1e-12 && r.y >= -1e-12);
            assert!(r.x2() <= 8.0e-3 + 1e-12 && r.y2() <= 8.0e-3 + 1e-12);
        }
    }

    #[test]
    fn neighbor_spacing_equals_ics() {
        let l = estimate_mesh(2.0, 0.6, 8.0, 8.0, 4).expect("fits");
        assert_eq!(l.mesh.count(), 4);
        let gap = l.positions_m[1].x - l.positions_m[0].x2();
        assert!((gap - 0.6e-3).abs() < 1e-12);
    }

    #[test]
    fn corner_first_order_on_2x3() {
        let l = estimate_mesh(2.0, 0.0, 8.0, 8.0, 6).expect("fits");
        assert_eq!((l.mesh.rows, l.mesh.cols), (2, 3));
        let order = l.corner_first_order();
        // In a 2x3 grid the four corners are indices 0, 2, 3, 5; the two
        // middle-column cells (1, 4) are edges.
        let corners: Vec<usize> = order[..4].to_vec();
        for i in [0usize, 2, 3, 5] {
            assert!(corners.contains(&i), "corner {i} should be filled first: {order:?}");
        }
    }

    #[test]
    fn corner_first_order_on_3x3_puts_center_last() {
        let l = estimate_mesh(2.0, 0.0, 8.0, 8.0, 9).expect("fits");
        assert_eq!((l.mesh.rows, l.mesh.cols), (3, 3));
        let order = l.corner_first_order();
        assert_eq!(*order.last().expect("non-empty"), 4, "center of 3x3 is index 4");
    }

    #[test]
    fn array_and_sram_regions_partition_the_chiplet_2d() {
        use crate::design::{ChipletConfig, Integration};
        use crate::tech::TechParams;
        let g = ChipletConfig {
            array_dim: 200,
            sram_kib_per_bank: 1024,
            integration: Integration::TwoD,
        }
        .geometry(&TechParams::default());
        let l = estimate_mesh(g.side_mm(), 0.5, 8.0, 8.0, 6).expect("fits");
        let a = l.array_region_2d(0, &g);
        let s = l.sram_region_2d(0, &g);
        let whole = l.positions_m[0];
        assert!((a.area() + s.area() - whole.area()).abs() < 1e-12);
        assert!((a.x2() - s.x).abs() < 1e-15);
    }
}
